// Scaling-path tests: long-poll park/push dispatch, seeded client-sampling
// determinism, hierarchical aggregation bitwise-matching flat FedAvg, and
// the multiplexed (site_workers) simulator mode up to 256 sites.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <set>
#include <thread>

#include "core/logging.h"
#include "flare/hierarchy.h"
#include "flare/simulator.h"

namespace cppflare::flare {
namespace {

nn::StateDict dict_of(std::vector<float> w) {
  nn::StateDict d;
  d.insert("w", {{static_cast<std::int64_t>(w.size())}, std::move(w)});
  return d;
}

/// Exact (bit-level) StateDict comparison — the hierarchical-vs-flat and
/// reproducibility guarantees are memcmp-equal, not approximately equal.
::testing::AssertionResult bitwise_equal(const nn::StateDict& a,
                                         const nn::StateDict& b) {
  if (a.entries().size() != b.entries().size()) {
    return ::testing::AssertionFailure() << "entry count differs";
  }
  for (const auto& [name, blob] : a.entries()) {
    const auto& other = b.at(name);
    if (blob.values.size() != other.values.size()) {
      return ::testing::AssertionFailure() << name << ": size differs";
    }
    if (!blob.values.empty() &&
        std::memcmp(blob.values.data(), other.values.data(),
                    blob.values.size() * sizeof(float)) != 0) {
      return ::testing::AssertionFailure() << name << ": bits differ";
    }
  }
  return ::testing::AssertionSuccess();
}

/// Deterministic pseudo-random contribution for site `site_seed` (an LCG, so
/// the test needs no global RNG state).
Dxo lcg_contribution(std::uint64_t site_seed, std::int64_t samples,
                     DxoKind kind = DxoKind::kWeights) {
  std::vector<float> w(17);
  std::uint64_t s = site_seed * 0x9e3779b97f4a7c15ull + 12345;
  for (float& v : w) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    v = static_cast<float>(static_cast<std::int64_t>(s >> 40) % 2000 - 1000) /
        250.0f;
  }
  Dxo d(kind, dict_of(std::move(w)));
  d.set_meta_int(Dxo::kMetaNumSamples, samples);
  d.set_meta_int(Dxo::kMetaRound, 0);
  d.set_meta_double(Dxo::kMetaTrainLoss, 1.0);
  d.set_meta_double(Dxo::kMetaValidAcc, 0.5);
  return d;
}

std::string padded_site(std::size_t i) {
  return "s-" + std::string(i < 10 ? "0" : "") + std::to_string(i);
}

class ScaleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
  }
  void TearDown() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }
};

// ---- wire compatibility --------------------------------------------------

TEST_F(ScaleTest, GetTaskWaitMsRoundtripsAndLegacyFramesDecode) {
  const GetTaskRequest req{"sess-42-site-1", 12345};
  const std::vector<std::uint8_t> frame = pack(req);
  const GetTaskRequest back = decode_get_task(frame);
  EXPECT_EQ(back.session_id, req.session_id);
  EXPECT_EQ(back.wait_ms, 12345);

  // A pre-long-poll frame is the same bytes minus the trailing i64; it must
  // still decode, with wait_ms defaulting to 0 (answer immediately).
  std::vector<std::uint8_t> legacy = frame;
  ASSERT_GE(legacy.size(), 8u);
  legacy.resize(legacy.size() - 8);
  const GetTaskRequest old = decode_get_task(legacy);
  EXPECT_EQ(old.session_id, req.session_id);
  EXPECT_EQ(old.wait_ms, 0);
}

// ---- hierarchical aggregation -------------------------------------------

TEST_F(ScaleTest, HierarchicalMatchesFlatBitwiseAcrossShapes) {
  for (const std::size_t n : {1u, 2u, 3u, 5u, 8u, 11u, 16u, 33u}) {
    for (const std::int64_t fanout : {2, 4, 16}) {
      for (const bool weighted : {true, false}) {
        FedAvgAggregator flat(weighted);
        HierarchicalFedAvgAggregator hier(weighted, fanout);
        const nn::StateDict global = dict_of(std::vector<float>(17, 0.0f));
        flat.reset(global, 0);
        hier.reset(global, 0);
        // Scrambled (and different) arrival orders: aggregation is defined
        // over site-name order, not arrival order.
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t j = (i * 7 + 3) % n;
          ASSERT_TRUE(flat.accept(padded_site(j),
                                  lcg_contribution(j + 1, 10 + 7 * (j % 5))));
        }
        for (std::size_t i = n; i-- > 0;) {
          ASSERT_TRUE(hier.accept(padded_site(i),
                                  lcg_contribution(i + 1, 10 + 7 * (i % 5))));
        }
        const nn::StateDict a = flat.aggregate();
        const nn::StateDict b = hier.aggregate();
        EXPECT_TRUE(bitwise_equal(a, b))
            << "n=" << n << " fanout=" << fanout << " weighted=" << weighted;
      }
    }
  }
}

TEST_F(ScaleTest, HierarchicalMatchesFlatWithDiffsAndRevocation) {
  const nn::StateDict global = dict_of(std::vector<float>(17, 0.25f));
  FedAvgAggregator flat(true);
  HierarchicalFedAvgAggregator hier(true, 4);
  flat.reset(global, 2);
  hier.reset(global, 2);
  for (std::size_t i = 0; i < 9; ++i) {
    Dxo d = lcg_contribution(i + 1, 20 + static_cast<std::int64_t>(i),
                             DxoKind::kWeightDiff);
    ASSERT_TRUE(flat.accept(padded_site(i), d));
    ASSERT_TRUE(hier.accept(padded_site(i), d));
  }
  // Buffered aggregation supports revocation; both modes must agree on the
  // post-revocation bits too.
  EXPECT_TRUE(flat.revoke(padded_site(3)));
  EXPECT_TRUE(hier.revoke(padded_site(3)));
  EXPECT_TRUE(bitwise_equal(flat.aggregate(), hier.aggregate()));
}

TEST_F(ScaleTest, HierarchicalFanoutMustBePowerOfTwoAtLeastTwo) {
  EXPECT_THROW(HierarchicalFedAvgAggregator(true, 0), ConfigError);
  EXPECT_THROW(HierarchicalFedAvgAggregator(true, 1), ConfigError);
  EXPECT_THROW(HierarchicalFedAvgAggregator(true, 3), ConfigError);
  EXPECT_THROW(HierarchicalFedAvgAggregator(true, 12), ConfigError);
  EXPECT_NO_THROW(HierarchicalFedAvgAggregator(true, 2));
  EXPECT_NO_THROW(HierarchicalFedAvgAggregator(false, 64));
}

// ---- long-poll park and push --------------------------------------------

/// Minimal raw protocol driver over the async dispatcher: seal a frame,
/// dispatch it, get the opened payload back through a future. This is what
/// lets the test observe *when* the server answers, which a blocking client
/// cannot.
class RawSite {
 public:
  RawSite(Credential cred, AsyncDispatcher dispatch)
      : cred_(std::move(cred)), dispatch_(std::move(dispatch)) {}

  std::future<std::vector<std::uint8_t>> send(
      const std::vector<std::uint8_t>& frame) {
    auto prom = std::make_shared<std::promise<std::vector<std::uint8_t>>>();
    std::future<std::vector<std::uint8_t>> fut = prom->get_future();
    const std::vector<std::uint8_t> sealed_frame =
        seal(cred_.name, cred_.secret, seq_.next(), frame);
    const std::vector<std::uint8_t> secret = cred_.secret;
    dispatch_(sealed_frame, [prom, secret](std::vector<std::uint8_t> resp) {
      try {
        prom->set_value(open(resp, secret).payload);
      } catch (...) {
        prom->set_exception(std::current_exception());
      }
    });
    return fut;
  }

  void register_site() {
    const RegisterAck ack =
        decode_register_ack(send(pack(RegisterRequest{cred_.name, cred_.token})).get());
    ASSERT_TRUE(ack.accepted) << ack.message;
    session_ = ack.session_id;
  }

  std::future<std::vector<std::uint8_t>> get_task(std::int64_t wait_ms) {
    return send(pack(GetTaskRequest{session_, wait_ms}));
  }

  void submit(std::int64_t round) {
    Dxo d = lcg_contribution(1, 10);
    d.set_meta_int(Dxo::kMetaRound, round);
    const SubmitAck ack = decode_submit_ack(
        send(pack(SubmitUpdateRequest{session_, round, d})).get());
    ASSERT_TRUE(ack.accepted) << ack.message;
  }

 private:
  Credential cred_;
  AsyncDispatcher dispatch_;
  SequenceSource seq_;
  std::string session_;
};

TEST_F(ScaleTest, LongPollParksUntilRoundOpensThenPushes) {
  const auto registry = Provisioner("scale-park", 5).provision_sites(2);
  ServerConfig config;
  config.job_id = "scale-park";
  config.num_rounds = 1;
  config.min_clients = 2;
  config.expected_clients = 2;
  FederatedServer server(config, registry, dict_of(std::vector<float>(17, 0.0f)),
                         std::make_unique<FedAvgAggregator>(true));

  RawSite s1(registry.at("site-1"), server.async_dispatcher());
  RawSite s2(registry.at("site-2"), server.async_dispatcher());
  s1.register_site();

  // The run has not started (site-2 is missing): a long-poll must park, not
  // answer kNone.
  std::future<std::vector<std::uint8_t>> parked = s1.get_task(10000);
  ASSERT_EQ(parked.wait_for(std::chrono::milliseconds(100)),
            std::future_status::timeout);

  // site-2's registration opens round 0; the parked poll must complete with
  // the train task *without* site-1 ever re-polling.
  s2.register_site();
  ASSERT_EQ(parked.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  const TaskMessage pushed = decode_task(parked.get());
  EXPECT_EQ(pushed.task, TaskKind::kTrain);
  EXPECT_EQ(pushed.round, 0);
}

TEST_F(ScaleTest, ParkedPollExpiresWithNoneAtDeadline) {
  const auto registry = Provisioner("scale-expire", 6).provision_sites(2);
  ServerConfig config;
  config.job_id = "scale-expire";
  config.num_rounds = 2;
  config.min_clients = 2;
  config.expected_clients = 2;
  FederatedServer server(config, registry, dict_of(std::vector<float>(17, 0.0f)),
                         std::make_unique<FedAvgAggregator>(true));

  RawSite s1(registry.at("site-1"), server.async_dispatcher());
  RawSite s2(registry.at("site-2"), server.async_dispatcher());
  s1.register_site();
  s2.register_site();
  // site-1 resolves round 0; its next poll has nothing to do (the round is
  // waiting on site-2) and parks, then expires with kNone at its deadline.
  s1.submit(0);
  const auto t0 = std::chrono::steady_clock::now();
  const TaskMessage expired = decode_task(s1.get_task(80).get());
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  EXPECT_EQ(expired.task, TaskKind::kNone);
  EXPECT_GE(waited, 50);  // genuinely parked, not answered immediately
}

// ---- seeded sampling determinism ----------------------------------------

/// Records which (round, site) pairs actually trained — the observable
/// cohort of each round — while producing a deterministic update.
class CohortLearner : public Learner {
 public:
  struct Recorder {
    core::Mutex mu;
    std::map<std::int64_t, std::set<std::string>> cohorts CF_GUARDED_BY(mu);

    std::map<std::int64_t, std::set<std::string>> snapshot() {
      core::MutexLock lock(mu);
      return cohorts;
    }
  };

  CohortLearner(std::string site, float target,
                std::shared_ptr<Recorder> recorder)
      : site_(std::move(site)), target_(target), recorder_(std::move(recorder)) {}

  Dxo train(const Dxo& global, const FLContext& ctx) override {
    {
      core::MutexLock lock(recorder_->mu);
      recorder_->cohorts[ctx.current_round].insert(site_);
    }
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v += 0.5f * (target_ - v);
    }
    Dxo update(DxoKind::kWeights, updated);
    update.set_meta_int(Dxo::kMetaNumSamples, 10);
    update.set_meta_double(Dxo::kMetaTrainLoss, 1.0);
    update.set_meta_double(Dxo::kMetaValidAcc, 0.5);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float target_;
  std::shared_ptr<Recorder> recorder_;
};

struct SampledRun {
  std::map<std::int64_t, std::set<std::string>> cohorts;
  nn::StateDict final_model;
};

SampledRun run_sampled(std::uint64_t seed, std::int64_t site_workers) {
  SimulatorConfig config;
  config.num_clients = 8;
  config.num_rounds = 5;
  config.clients_per_round = 3;
  config.seed = seed;
  config.site_workers = site_workers;
  auto recorder = std::make_shared<CohortLearner::Recorder>();
  SimulatorRunner runner(config, dict_of(std::vector<float>(9, 0.0f)),
                         std::make_unique<FedAvgAggregator>(true),
                         [&](std::int64_t i, const std::string& name) {
                           return std::make_shared<CohortLearner>(
                               name, static_cast<float>(i), recorder);
                         });
  const SimulationResult result = runner.run();
  EXPECT_FALSE(result.aborted) << result.abort_reason;
  return {recorder->snapshot(), result.final_model};
}

TEST_F(ScaleTest, SamplingSameSeedSameCohortsAndBits) {
  const SampledRun a = run_sampled(21, 0);
  const SampledRun b = run_sampled(21, 0);
  ASSERT_EQ(a.cohorts.size(), 5u);
  for (const auto& [round, cohort] : a.cohorts) {
    EXPECT_EQ(cohort.size(), 3u) << "round " << round;
  }
  EXPECT_EQ(a.cohorts, b.cohorts);
  EXPECT_TRUE(bitwise_equal(a.final_model, b.final_model));

  // A different seed draws different cohorts (deterministically so).
  const SampledRun c = run_sampled(22, 0);
  EXPECT_NE(a.cohorts, c.cohorts);
}

TEST_F(ScaleTest, SamplingCohortsIdenticalAcrossExecutionModes) {
  // The cohort is a server-side draw: thread-per-site and multiplexed
  // execution of the same seed see the same K-of-N sample every round and
  // aggregate to the same bits.
  const SampledRun threads = run_sampled(33, 0);
  const SampledRun multiplexed = run_sampled(33, 2);
  EXPECT_EQ(threads.cohorts, multiplexed.cohorts);
  EXPECT_TRUE(bitwise_equal(threads.final_model, multiplexed.final_model));
}

// ---- multiplexed simulator mode -----------------------------------------

TEST_F(ScaleTest, MultiplexedModeRejectsIncompatibleDecorators) {
  SimulatorConfig config;
  config.num_clients = 2;
  config.num_rounds = 1;
  config.site_workers = 2;
  auto factory = [](std::int64_t i, const std::string& name) {
    return std::make_shared<CohortLearner>(
        name, static_cast<float>(i),
        std::make_shared<CohortLearner::Recorder>());
  };
  {
    SimulatorConfig tcp = config;
    tcp.use_tcp = true;
    SimulatorRunner runner(tcp, dict_of({0.0f}),
                           std::make_unique<FedAvgAggregator>(true), factory);
    EXPECT_THROW(runner.run(), ConfigError);
  }
  {
    SimulatorRunner runner(config, dict_of({0.0f}),
                           std::make_unique<FedAvgAggregator>(true), factory);
    runner.set_client_customizer([](FederatedClient&) {});
    EXPECT_THROW(runner.run(), ConfigError);
  }
  {
    SimulatorRunner runner(config, dict_of({0.0f}),
                           std::make_unique<FedAvgAggregator>(true), factory);
    runner.set_fault_planner(
        [](std::int64_t, const std::string&, std::int64_t) {
          return std::optional<FaultPlan>{};
        });
    EXPECT_THROW(runner.run(), ConfigError);
  }
}

nn::StateDict run_federation(std::int64_t num_clients, std::int64_t site_workers,
                             std::unique_ptr<Aggregator> aggregator,
                             std::int64_t clients_per_round = 0) {
  SimulatorConfig config;
  config.num_clients = num_clients;
  config.num_rounds = 3;
  config.clients_per_round = clients_per_round;
  config.site_workers = site_workers;
  SimulatorRunner runner(config, dict_of(std::vector<float>(9, 0.0f)),
                         std::move(aggregator),
                         [&](std::int64_t i, const std::string& name) {
                           return std::make_shared<CohortLearner>(
                               name, static_cast<float>(i % 5),
                               std::make_shared<CohortLearner::Recorder>());
                         });
  const SimulationResult result = runner.run();
  EXPECT_FALSE(result.aborted) << result.abort_reason;
  EXPECT_EQ(result.history.size(), 3u);
  EXPECT_TRUE(result.failed_sites.empty());
  return result.final_model;
}

TEST_F(ScaleTest, MultiplexedMatchesThreadPerSiteBitwise) {
  const nn::StateDict threads =
      run_federation(8, 0, std::make_unique<FedAvgAggregator>(true));
  const nn::StateDict multiplexed =
      run_federation(8, 4, std::make_unique<FedAvgAggregator>(true));
  EXPECT_TRUE(bitwise_equal(threads, multiplexed));
}

TEST_F(ScaleTest, HierarchicalFederationMatchesFlatBitwise) {
  const nn::StateDict flat =
      run_federation(11, 4, std::make_unique<FedAvgAggregator>(true));
  const nn::StateDict hier = run_federation(
      11, 4, std::make_unique<HierarchicalFedAvgAggregator>(true, 4));
  EXPECT_TRUE(bitwise_equal(flat, hier));
}

TEST_F(ScaleTest, TwoFiftySixSitesOnEightWorkersReproducible) {
  // The acceptance case: a 256-site sampled federation multiplexed over 8
  // workers on one box, bitwise-reproducible across invocations.
  const nn::StateDict first = run_federation(
      256, 8, std::make_unique<HierarchicalFedAvgAggregator>(true, 16), 64);
  const nn::StateDict second = run_federation(
      256, 8, std::make_unique<HierarchicalFedAvgAggregator>(true, 16), 64);
  EXPECT_TRUE(bitwise_equal(first, second));
}

}  // namespace
}  // namespace cppflare::flare
