#include "data/mlm.h"

#include <gtest/gtest.h>

namespace cppflare::data {
namespace {

Sample make_sample(std::int64_t valid_tokens, std::int64_t padded_len) {
  Sample s;
  s.ids.push_back(Vocabulary::kCls);
  for (std::int64_t i = 0; i < valid_tokens; ++i) {
    s.ids.push_back(Vocabulary::kNumSpecial + (i % 20));
  }
  s.length = static_cast<std::int64_t>(s.ids.size());
  s.ids.resize(static_cast<std::size_t>(padded_len), Vocabulary::kPad);
  return s;
}

TEST(MlmMasker, ValidatesConstruction) {
  EXPECT_THROW(MlmMasker(Vocabulary::kNumSpecial), Error);
  MlmMasker::Options bad;
  bad.mask_prob = 0.0;
  EXPECT_THROW(MlmMasker(100, bad), Error);
  bad.mask_prob = 0.15;
  bad.replace_mask = 0.9;
  bad.replace_random = 0.2;
  EXPECT_THROW(MlmMasker(100, bad), Error);
}

TEST(MlmMasker, NeverTouchesSpecialOrPaddedPositions) {
  MlmMasker masker(50);
  core::Rng rng(1);
  const Sample s = make_sample(10, 32);
  for (int trial = 0; trial < 50; ++trial) {
    const MlmExample ex = masker.mask(s, rng);
    EXPECT_EQ(ex.input_ids[0], Vocabulary::kCls);
    EXPECT_EQ(ex.targets[0], MlmMasker::kIgnore);
    for (std::size_t i = static_cast<std::size_t>(s.length); i < ex.input_ids.size();
         ++i) {
      EXPECT_EQ(ex.input_ids[i], Vocabulary::kPad);
      EXPECT_EQ(ex.targets[i], MlmMasker::kIgnore);
    }
  }
}

TEST(MlmMasker, SelectionRateNearConfiguredP) {
  MlmMasker masker(50);
  core::Rng rng(2);
  const Sample s = make_sample(30, 32);
  std::int64_t selected = 0, total = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const MlmExample ex = masker.mask(s, rng);
    for (std::size_t i = 1; i < static_cast<std::size_t>(s.length); ++i) {
      ++total;
      if (ex.targets[i] != MlmMasker::kIgnore) ++selected;
    }
  }
  const double rate = static_cast<double>(selected) / static_cast<double>(total);
  EXPECT_NEAR(rate, 0.15, 0.02);
}

TEST(MlmMasker, EightyTenTenSplit) {
  MlmMasker masker(500);
  core::Rng rng(3);
  const Sample s = make_sample(30, 32);
  std::int64_t masked = 0, random_or_kept = 0, kept = 0, selected = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const MlmExample ex = masker.mask(s, rng);
    for (std::size_t i = 1; i < static_cast<std::size_t>(s.length); ++i) {
      if (ex.targets[i] == MlmMasker::kIgnore) continue;
      ++selected;
      if (ex.input_ids[i] == Vocabulary::kMask) {
        ++masked;
      } else if (ex.input_ids[i] == s.ids[i]) {
        ++kept;  // includes 'random' draws that happened to hit the original
      } else {
        ++random_or_kept;
      }
    }
  }
  const double frac_mask = static_cast<double>(masked) / selected;
  const double frac_kept = static_cast<double>(kept) / selected;
  EXPECT_NEAR(frac_mask, 0.80, 0.03);
  EXPECT_NEAR(frac_kept, 0.10, 0.03);
  EXPECT_GT(random_or_kept, 0);
}

TEST(MlmMasker, TargetsCarryOriginalIds) {
  MlmMasker masker(50);
  core::Rng rng(4);
  const Sample s = make_sample(20, 24);
  const MlmExample ex = masker.mask(s, rng);
  for (std::size_t i = 0; i < ex.targets.size(); ++i) {
    if (ex.targets[i] != MlmMasker::kIgnore) {
      EXPECT_EQ(ex.targets[i], s.ids[i]);
    }
  }
}

TEST(MlmMasker, RandomReplacementsAreRegularTokens) {
  MlmMasker::Options opts;
  opts.replace_mask = 0.0;
  opts.replace_random = 1.0;  // every selected token replaced randomly
  MlmMasker masker(50, opts);
  core::Rng rng(5);
  const Sample s = make_sample(25, 32);
  for (int trial = 0; trial < 100; ++trial) {
    const MlmExample ex = masker.mask(s, rng);
    for (std::size_t i = 1; i < static_cast<std::size_t>(s.length); ++i) {
      if (ex.targets[i] == MlmMasker::kIgnore) continue;
      EXPECT_GE(ex.input_ids[i], Vocabulary::first_regular_id());
      EXPECT_LT(ex.input_ids[i], 50);
    }
  }
}

TEST(MlmMasker, MaskBatchPreservesGeometry) {
  MlmMasker masker(50);
  core::Rng rng(6);
  Batch batch;
  batch.batch_size = 3;
  batch.seq_len = 8;
  for (int b = 0; b < 3; ++b) {
    const Sample s = make_sample(5, 8);
    batch.ids.insert(batch.ids.end(), s.ids.begin(), s.ids.end());
    batch.lengths.push_back(s.length);
    batch.labels.push_back(0);
  }
  const auto masked = masker.mask_batch(batch, rng);
  EXPECT_EQ(masked.batch_size, 3);
  EXPECT_EQ(masked.seq_len, 8);
  EXPECT_EQ(masked.input_ids.size(), 24u);
  EXPECT_EQ(masked.targets.size(), 24u);
  EXPECT_EQ(masked.lengths, batch.lengths);
}

struct MaskProbCase {
  double p;
};

class MlmMaskProbTest : public ::testing::TestWithParam<MaskProbCase> {};

TEST_P(MlmMaskProbTest, EmpiricalRateTracksP) {
  MlmMasker::Options opts;
  opts.mask_prob = GetParam().p;
  MlmMasker masker(100, opts);
  core::Rng rng(7);
  const Sample s = make_sample(40, 48);
  std::int64_t selected = 0, total = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const MlmExample ex = masker.mask(s, rng);
    for (std::size_t i = 1; i < static_cast<std::size_t>(s.length); ++i) {
      ++total;
      if (ex.targets[i] != MlmMasker::kIgnore) ++selected;
    }
  }
  EXPECT_NEAR(static_cast<double>(selected) / total, GetParam().p,
              0.035 + 0.1 * GetParam().p);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MlmMaskProbTest,
                         ::testing::Values(MaskProbCase{0.05}, MaskProbCase{0.15},
                                           MaskProbCase{0.3}, MaskProbCase{0.5}),
                         [](const ::testing::TestParamInfo<MaskProbCase>& info) {
                           std::string name = "p";
                           name += std::to_string(
                               static_cast<int>(info.param.p * 100));
                           return name;
                         });

}  // namespace
}  // namespace cppflare::data
