#include "flare/filters.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/error.h"

namespace cppflare::flare {
namespace {

Dxo weights_dxo(std::vector<float> w) {
  nn::StateDict d;
  d.insert("a", {{static_cast<std::int64_t>(w.size())}, std::move(w)});
  return Dxo(DxoKind::kWeights, d);
}

TEST(GaussianFilter, AddsZeroMeanNoise) {
  GaussianPrivacyFilter filter(0.1, 42);
  Dxo dxo = weights_dxo(std::vector<float>(10000, 1.0f));
  FLContext ctx;
  filter.process(dxo, ctx);
  double mean = 0.0, var = 0.0;
  const auto& vals = dxo.data().at("a").values;
  for (float v : vals) mean += v;
  mean /= vals.size();
  for (float v : vals) var += (v - mean) * (v - mean);
  var /= vals.size();
  EXPECT_NEAR(mean, 1.0, 0.01);
  EXPECT_NEAR(std::sqrt(var), 0.1, 0.02);
}

TEST(GaussianFilter, SkipsMetricsDxo) {
  GaussianPrivacyFilter filter(1.0, 1);
  Dxo dxo;  // kMetrics, empty data
  FLContext ctx;
  filter.process(dxo, ctx);
  EXPECT_TRUE(dxo.data().empty());
}

TEST(GaussianFilter, NoiseVariesPerCall) {
  GaussianPrivacyFilter filter(0.5, 2);
  Dxo a = weights_dxo({0, 0, 0, 0});
  Dxo b = weights_dxo({0, 0, 0, 0});
  FLContext ctx;
  filter.process(a, ctx);
  filter.process(b, ctx);
  EXPECT_NE(a.data().at("a").values, b.data().at("a").values);
}

TEST(NormClip, ScalesDownLargeUpdates) {
  NormClipFilter filter(1.0);
  Dxo dxo = weights_dxo({3.0f, 4.0f});  // norm 5
  FLContext ctx;
  filter.process(dxo, ctx);
  const auto& v = dxo.data().at("a").values;
  EXPECT_NEAR(std::sqrt(v[0] * v[0] + v[1] * v[1]), 1.0, 1e-5);
  EXPECT_NEAR(v[0] / v[1], 0.75, 1e-5);  // direction preserved
}

TEST(NormClip, LeavesSmallUpdatesAlone) {
  NormClipFilter filter(10.0);
  Dxo dxo = weights_dxo({3.0f, 4.0f});
  FLContext ctx;
  filter.process(dxo, ctx);
  EXPECT_FLOAT_EQ(dxo.data().at("a").values[0], 3.0f);
}

TEST(NormClip, NormSpansAllBlobs) {
  NormClipFilter filter(5.0);
  nn::StateDict d;
  d.insert("a", {{1}, {6.0f}});
  d.insert("b", {{1}, {8.0f}});  // global norm 10
  Dxo dxo(DxoKind::kWeightDiff, d);
  FLContext ctx;
  filter.process(dxo, ctx);
  EXPECT_NEAR(dxo.data().at("a").values[0], 3.0f, 1e-5f);
  EXPECT_NEAR(dxo.data().at("b").values[0], 4.0f, 1e-5f);
}

TEST(NormClip, ZeroUpdateUnchanged) {
  NormClipFilter filter(1.0);
  Dxo dxo = weights_dxo({0.0f, 0.0f});
  FLContext ctx;
  filter.process(dxo, ctx);
  EXPECT_FLOAT_EQ(dxo.data().at("a").values[0], 0.0f);
}

TEST(NormClip, AllNaNPayloadPassesThroughUntouched) {
  // Clipping a non-finite norm would smear NaN across every value via
  // max_norm/NaN; the filter leaves the payload intact so the server-side
  // validator can reject it with a typed non_finite verdict.
  NormClipFilter filter(1.0);
  const float qnan = std::nanf("");
  Dxo dxo = weights_dxo({qnan, qnan, qnan});
  FLContext ctx;
  filter.process(dxo, ctx);
  for (float v : dxo.data().at("a").values) EXPECT_TRUE(std::isnan(v));
}

TEST(NormClip, SingleInfAlsoSkipsClipping) {
  NormClipFilter filter(1.0);
  Dxo dxo = weights_dxo({std::numeric_limits<float>::infinity(), 2.0f});
  FLContext ctx;
  filter.process(dxo, ctx);
  // The finite value is untouched — no partial rescale of a poisoned update.
  EXPECT_FLOAT_EQ(dxo.data().at("a").values[1], 2.0f);
  EXPECT_TRUE(std::isinf(dxo.data().at("a").values[0]));
}

TEST(GaussianFilter, SameSeedSameNoise) {
  // Two filters built with the same seed must perturb identically — the
  // determinism contract that makes privacy-filtered runs replayable.
  GaussianPrivacyFilter a(0.5, 77);
  GaussianPrivacyFilter b(0.5, 77);
  Dxo da = weights_dxo({1.0f, 2.0f, 3.0f, 4.0f});
  Dxo db = weights_dxo({1.0f, 2.0f, 3.0f, 4.0f});
  FLContext ctx;
  a.process(da, ctx);
  b.process(db, ctx);
  EXPECT_EQ(da.data().at("a").values, db.data().at("a").values);

  GaussianPrivacyFilter c(0.5, 78);
  Dxo dc = weights_dxo({1.0f, 2.0f, 3.0f, 4.0f});
  c.process(dc, ctx);
  EXPECT_NE(da.data().at("a").values, dc.data().at("a").values);
}

TEST(FilterChainTest, OrderingIsObservable) {
  // clip-then-noise leaves the noise unclipped; noise-then-clip bounds the
  // final norm. The chain must run filters strictly in insertion order.
  const auto run = [](bool clip_first) {
    FilterChain chain;
    if (clip_first) chain.add(std::make_shared<NormClipFilter>(1.0));
    chain.add(std::make_shared<GaussianPrivacyFilter>(2.0, 7));
    if (!clip_first) chain.add(std::make_shared<NormClipFilter>(1.0));
    Dxo dxo = weights_dxo({30.0f, 40.0f});
    FLContext ctx;
    chain.process(dxo, ctx);
    const auto& v = dxo.data().at("a").values;
    return std::sqrt(static_cast<double>(v[0]) * v[0] +
                     static_cast<double>(v[1]) * v[1]);
  };
  EXPECT_GT(run(/*clip_first=*/true), 1.0 + 1e-6);   // noise escaped the clip
  EXPECT_LE(run(/*clip_first=*/false), 1.0 + 1e-6);  // clip bounded the noise
}

TEST(ExcludeVars, DropsMatchingPrefix) {
  nn::StateDict d;
  d.insert("head.weight", {{1}, {1.0f}});
  d.insert("head.bias", {{1}, {2.0f}});
  d.insert("encoder.weight", {{1}, {3.0f}});
  Dxo dxo(DxoKind::kWeights, d);
  ExcludeVarsFilter filter("head.");
  FLContext ctx;
  filter.process(dxo, ctx);
  EXPECT_EQ(dxo.data().size(), 1u);
  EXPECT_TRUE(dxo.data().contains("encoder.weight"));
}

TEST(ExcludeVars, NoMatchesIsNoop) {
  nn::StateDict d;
  d.insert("encoder.weight", {{1}, {3.0f}});
  Dxo dxo(DxoKind::kWeights, d);
  ExcludeVarsFilter filter("nothing.");
  FLContext ctx;
  filter.process(dxo, ctx);
  EXPECT_EQ(dxo.data().size(), 1u);
}

TEST(FilterChainTest, AppliesInOrder) {
  FilterChain chain;
  chain.add(std::make_shared<NormClipFilter>(1.0));
  chain.add(std::make_shared<ExcludeVarsFilter>("drop."));
  nn::StateDict d;
  d.insert("drop.x", {{1}, {100.0f}});
  d.insert("keep.y", {{1}, {100.0f}});
  Dxo dxo(DxoKind::kWeights, d);
  FLContext ctx;
  chain.process(dxo, ctx);
  // Clip first (norm over both), then drop.
  EXPECT_EQ(chain.size(), 2u);
  EXPECT_EQ(dxo.data().size(), 1u);
  EXPECT_LT(dxo.data().at("keep.y").values[0], 1.0f);
}

TEST(FilterChainTest, EmptyChainNoop) {
  FilterChain chain;
  Dxo dxo = weights_dxo({5.0f});
  FLContext ctx;
  chain.process(dxo, ctx);
  EXPECT_FLOAT_EQ(dxo.data().at("a").values[0], 5.0f);
}

TEST(DpGaussian, ClipsThenPerturbsAtCalibratedSigma) {
  // sigma = z * C: with C = 1 and z = 0.1 the post-clip unit vector gets
  // noise with stddev 0.1 — verify empirically over a long payload.
  DpGaussianFilter filter(1.0, 0.1, 42);
  std::vector<float> w(10000, 0.0f);
  w[0] = 30.0f;
  w[1] = 40.0f;  // norm 50, clipped to 1
  Dxo dxo = weights_dxo(std::move(w));
  FLContext ctx;
  filter.process(dxo, ctx);
  const auto& vals = dxo.data().at("a").values;
  EXPECT_NEAR(vals[0], 0.6f, 0.5f);  // clipped direction survives the noise
  double var = 0.0;
  for (std::size_t i = 2; i < vals.size(); ++i) {
    var += static_cast<double>(vals[i]) * vals[i];  // mean 0 by construction
  }
  var /= static_cast<double>(vals.size() - 2);
  EXPECT_NEAR(std::sqrt(var), 0.1, 0.02);
}

TEST(DpGaussian, ZeroMultiplierIsPureClip) {
  DpGaussianFilter filter(1.0, 0.0, 7);
  Dxo dxo = weights_dxo({3.0f, 4.0f});  // norm 5
  FLContext ctx;
  filter.process(dxo, ctx);
  const auto& v = dxo.data().at("a").values;
  EXPECT_NEAR(std::sqrt(v[0] * v[0] + v[1] * v[1]), 1.0, 1e-5);
  EXPECT_NEAR(v[0] / v[1], 0.75, 1e-5);
}

TEST(DpGaussian, SkipsMetricsAndValidatesCtor) {
  DpGaussianFilter filter(1.0, 1.0, 1);
  Dxo metrics;  // kMetrics
  FLContext ctx;
  filter.process(metrics, ctx);
  EXPECT_TRUE(metrics.data().empty());
  EXPECT_THROW(DpGaussianFilter(0.0, 1.0, 1), Error);
  EXPECT_THROW(DpGaussianFilter(-1.0, 1.0, 1), Error);
  EXPECT_THROW(DpGaussianFilter(1.0, -0.5, 1), Error);
}

TEST(DpAccountant, BasicCompositionMatchesClosedForm) {
  const DpAccountant acc(1.1, 1e-5);
  const double expected = std::sqrt(2.0 * std::log(1.25 / 1e-5)) / 1.1;
  EXPECT_NEAR(acc.epsilon_per_round(), expected, 1e-12);
  EXPECT_NEAR(acc.epsilon_after(10), 10.0 * expected, 1e-9);
  EXPECT_EQ(acc.epsilon_after(0), 0.0);
  EXPECT_EQ(acc.delta(), 1e-5);
  // More noise, less spend.
  EXPECT_LT(DpAccountant(2.0, 1e-5).epsilon_per_round(),
            acc.epsilon_per_round());
}

TEST(DpAccountant, NoNoiseMeansInfiniteSpend) {
  const DpAccountant acc(0.0, 1e-5);
  EXPECT_TRUE(std::isinf(acc.epsilon_per_round()));
  EXPECT_TRUE(std::isinf(acc.epsilon_after(1)));
}

TEST(DpAccountant, RejectsDegenerateDelta) {
  EXPECT_THROW(DpAccountant(1.0, 0.0), Error);
  EXPECT_THROW(DpAccountant(1.0, 1.0), Error);
  EXPECT_THROW(DpAccountant(1.0, -0.1), Error);
  EXPECT_THROW(DpAccountant(1.0, 1.5), Error);
}

TEST(PreScale, ScalesByShareOfTotalSamples) {
  // 4 sites, 8 samples total, this site holds 4: factor 4*4/8 = 2.
  PreScaleFilter filter(4, 8);
  Dxo dxo = weights_dxo({1.5f, -2.0f});
  dxo.set_meta_int(Dxo::kMetaNumSamples, 4);
  FLContext ctx;
  filter.process(dxo, ctx);
  EXPECT_EQ(dxo.data().at("a").values[0], 3.0f);
  EXPECT_EQ(dxo.data().at("a").values[1], -4.0f);
}

TEST(PreScale, UniformSitesAreFixedPoint) {
  // Equal shares (factor 1) must leave the update bitwise intact — the
  // degenerate case where weighted and unweighted FedAvg already agree.
  PreScaleFilter filter(4, 40);
  Dxo dxo = weights_dxo({0.1f, 0.2f, 0.3f});
  dxo.set_meta_int(Dxo::kMetaNumSamples, 10);
  FLContext ctx;
  filter.process(dxo, ctx);
  EXPECT_EQ(dxo.data().at("a").values, (std::vector<float>{0.1f, 0.2f, 0.3f}));
}

TEST(PreScale, SkipsMetricsAndValidatesCtor) {
  PreScaleFilter filter(2, 10);
  Dxo metrics;
  FLContext ctx;
  filter.process(metrics, ctx);
  EXPECT_TRUE(metrics.data().empty());
  EXPECT_THROW(PreScaleFilter(0, 10), Error);
  EXPECT_THROW(PreScaleFilter(2, 0), Error);
  EXPECT_THROW(PreScaleFilter(-1, -1), Error);
}

TEST(FilterNames, Describe) {
  EXPECT_EQ(GaussianPrivacyFilter(0.1, 1).name(), "GaussianPrivacy");
  EXPECT_EQ(NormClipFilter(1.0).name(), "NormClip");
  EXPECT_EQ(ExcludeVarsFilter("head.").name(), "ExcludeVars(head.)");
  EXPECT_EQ(DpGaussianFilter(1.0, 1.0, 1).name(), "DpGaussian");
  EXPECT_EQ(PreScaleFilter(2, 10).name(), "PreScale");
}

}  // namespace
}  // namespace cppflare::flare
