#include "flare/filters.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cppflare::flare {
namespace {

Dxo weights_dxo(std::vector<float> w) {
  nn::StateDict d;
  d.insert("a", {{static_cast<std::int64_t>(w.size())}, std::move(w)});
  return Dxo(DxoKind::kWeights, d);
}

TEST(GaussianFilter, AddsZeroMeanNoise) {
  GaussianPrivacyFilter filter(0.1, 42);
  Dxo dxo = weights_dxo(std::vector<float>(10000, 1.0f));
  FLContext ctx;
  filter.process(dxo, ctx);
  double mean = 0.0, var = 0.0;
  const auto& vals = dxo.data().at("a").values;
  for (float v : vals) mean += v;
  mean /= vals.size();
  for (float v : vals) var += (v - mean) * (v - mean);
  var /= vals.size();
  EXPECT_NEAR(mean, 1.0, 0.01);
  EXPECT_NEAR(std::sqrt(var), 0.1, 0.02);
}

TEST(GaussianFilter, SkipsMetricsDxo) {
  GaussianPrivacyFilter filter(1.0, 1);
  Dxo dxo;  // kMetrics, empty data
  FLContext ctx;
  filter.process(dxo, ctx);
  EXPECT_TRUE(dxo.data().empty());
}

TEST(GaussianFilter, NoiseVariesPerCall) {
  GaussianPrivacyFilter filter(0.5, 2);
  Dxo a = weights_dxo({0, 0, 0, 0});
  Dxo b = weights_dxo({0, 0, 0, 0});
  FLContext ctx;
  filter.process(a, ctx);
  filter.process(b, ctx);
  EXPECT_NE(a.data().at("a").values, b.data().at("a").values);
}

TEST(NormClip, ScalesDownLargeUpdates) {
  NormClipFilter filter(1.0);
  Dxo dxo = weights_dxo({3.0f, 4.0f});  // norm 5
  FLContext ctx;
  filter.process(dxo, ctx);
  const auto& v = dxo.data().at("a").values;
  EXPECT_NEAR(std::sqrt(v[0] * v[0] + v[1] * v[1]), 1.0, 1e-5);
  EXPECT_NEAR(v[0] / v[1], 0.75, 1e-5);  // direction preserved
}

TEST(NormClip, LeavesSmallUpdatesAlone) {
  NormClipFilter filter(10.0);
  Dxo dxo = weights_dxo({3.0f, 4.0f});
  FLContext ctx;
  filter.process(dxo, ctx);
  EXPECT_FLOAT_EQ(dxo.data().at("a").values[0], 3.0f);
}

TEST(NormClip, NormSpansAllBlobs) {
  NormClipFilter filter(5.0);
  nn::StateDict d;
  d.insert("a", {{1}, {6.0f}});
  d.insert("b", {{1}, {8.0f}});  // global norm 10
  Dxo dxo(DxoKind::kWeightDiff, d);
  FLContext ctx;
  filter.process(dxo, ctx);
  EXPECT_NEAR(dxo.data().at("a").values[0], 3.0f, 1e-5f);
  EXPECT_NEAR(dxo.data().at("b").values[0], 4.0f, 1e-5f);
}

TEST(NormClip, ZeroUpdateUnchanged) {
  NormClipFilter filter(1.0);
  Dxo dxo = weights_dxo({0.0f, 0.0f});
  FLContext ctx;
  filter.process(dxo, ctx);
  EXPECT_FLOAT_EQ(dxo.data().at("a").values[0], 0.0f);
}

TEST(ExcludeVars, DropsMatchingPrefix) {
  nn::StateDict d;
  d.insert("head.weight", {{1}, {1.0f}});
  d.insert("head.bias", {{1}, {2.0f}});
  d.insert("encoder.weight", {{1}, {3.0f}});
  Dxo dxo(DxoKind::kWeights, d);
  ExcludeVarsFilter filter("head.");
  FLContext ctx;
  filter.process(dxo, ctx);
  EXPECT_EQ(dxo.data().size(), 1u);
  EXPECT_TRUE(dxo.data().contains("encoder.weight"));
}

TEST(ExcludeVars, NoMatchesIsNoop) {
  nn::StateDict d;
  d.insert("encoder.weight", {{1}, {3.0f}});
  Dxo dxo(DxoKind::kWeights, d);
  ExcludeVarsFilter filter("nothing.");
  FLContext ctx;
  filter.process(dxo, ctx);
  EXPECT_EQ(dxo.data().size(), 1u);
}

TEST(FilterChainTest, AppliesInOrder) {
  FilterChain chain;
  chain.add(std::make_shared<NormClipFilter>(1.0));
  chain.add(std::make_shared<ExcludeVarsFilter>("drop."));
  nn::StateDict d;
  d.insert("drop.x", {{1}, {100.0f}});
  d.insert("keep.y", {{1}, {100.0f}});
  Dxo dxo(DxoKind::kWeights, d);
  FLContext ctx;
  chain.process(dxo, ctx);
  // Clip first (norm over both), then drop.
  EXPECT_EQ(chain.size(), 2u);
  EXPECT_EQ(dxo.data().size(), 1u);
  EXPECT_LT(dxo.data().at("keep.y").values[0], 1.0f);
}

TEST(FilterChainTest, EmptyChainNoop) {
  FilterChain chain;
  Dxo dxo = weights_dxo({5.0f});
  FLContext ctx;
  chain.process(dxo, ctx);
  EXPECT_FLOAT_EQ(dxo.data().at("a").values[0], 5.0f);
}

TEST(FilterNames, Describe) {
  EXPECT_EQ(GaussianPrivacyFilter(0.1, 1).name(), "GaussianPrivacy");
  EXPECT_EQ(NormClipFilter(1.0).name(), "NormClip");
  EXPECT_EQ(ExcludeVarsFilter("head.").name(), "ExcludeVars(head.)");
}

}  // namespace
}  // namespace cppflare::flare
