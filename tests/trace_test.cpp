// Observability suite (DESIGN.md §11).
//
// Covers the core tracing substrate (RAII span nesting, ring-buffer
// overwrite accounting, thread-safety under parallel_for), the metric
// registry (counters/gauges/histograms, stable references, snapshot prefix
// views), and the flare-level glue: the Chrome `about:tracing` exporter, the
// summary sink, and the SimulatorRunner integration. The headline acceptance
// property lives here: a fully traced 8-site federation produces a global
// model memcmp-equal to an untraced run, and its exported timeline carries a
// per-round span for every site.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/logging.h"
#include "core/parallel.h"
#include "core/trace.h"
#include "flare/observability.h"
#include "flare/simulator.h"

namespace cppflare {
namespace {

// Every test leaves the process-wide tracer stopped and empty: it is global
// state, and a leaked enabled tracer would silently record into later tests.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
    core::Tracer::instance().stop();
    core::Tracer::instance().clear();
  }
  void TearDown() override {
    core::Tracer::instance().stop();
    core::Tracer::instance().clear();
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }
};

// ---------------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------------

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(core::Tracer::instance().enabled());
  {
    CF_TRACE_SPAN("should.not.appear");
  }
  core::Tracer::instance().record_complete("manual", "", -1, 0, 10);
  EXPECT_EQ(core::Tracer::instance().size(), 0u);
}

TEST_F(TraceTest, SpanRecordsNameSiteRoundAndDuration) {
  if (!core::kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  core::Tracer& tracer = core::Tracer::instance();
  tracer.start();
  {
    CF_TRACE_SPAN_SITE("unit.work", "site-3", 7);
    // Burn a little wall time so dur_ns is strictly positive.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  tracer.stop();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "unit.work");
  EXPECT_STREQ(events[0].site, "site-3");
  EXPECT_EQ(events[0].round, 7);
  EXPECT_GT(events[0].dur_ns, 0);
  EXPECT_GE(events[0].cpu_ns, 0);
  EXPECT_GT(events[0].tid, 0u);
  EXPECT_GT(events[0].id, 0u);
  EXPECT_EQ(events[0].parent, 0u);  // root span
}

TEST_F(TraceTest, NestedSpansLinkParentToChild) {
  if (!core::kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  core::Tracer& tracer = core::Tracer::instance();
  tracer.start();
  {
    CF_TRACE_SPAN("outer");
    {
      CF_TRACE_SPAN("middle");
      {
        CF_TRACE_SPAN("inner");
      }
    }
  }
  tracer.stop();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  // events() sorts by start ts: outer opened first, inner closed first.
  const core::TraceEvent* outer = nullptr;
  const core::TraceEvent* middle = nullptr;
  const core::TraceEvent* inner = nullptr;
  for (const auto& e : events) {
    if (std::strcmp(e.name, "outer") == 0) outer = &e;
    if (std::strcmp(e.name, "middle") == 0) middle = &e;
    if (std::strcmp(e.name, "inner") == 0) inner = &e;
  }
  ASSERT_TRUE(outer != nullptr && middle != nullptr && inner != nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(middle->parent, outer->id);
  EXPECT_EQ(inner->parent, middle->id);
  // A sibling opened after the nest unwinds is rooted again.
  tracer.start();
  {
    CF_TRACE_SPAN("sibling");
  }
  tracer.stop();
  const auto after = tracer.events();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].parent, 0u);
}

TEST_F(TraceTest, OverlongNamesAreTruncatedNotOverflowed) {
  if (!core::kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  core::Tracer& tracer = core::Tracer::instance();
  tracer.start();
  const std::string long_name(100, 'n');
  const std::string long_site(100, 's');
  tracer.record_complete(long_name.c_str(), long_site, 1, 0, 10);
  tracer.stop();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::strlen(events[0].name), core::TraceEvent::kNameCap - 1);
  EXPECT_EQ(std::strlen(events[0].site), core::TraceEvent::kSiteCap - 1);
}

TEST_F(TraceTest, RingOverwritesOldestAndCountsDropped) {
  core::Tracer& tracer = core::Tracer::instance();
  tracer.start(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.record_complete("evt", "", i, /*start_ns=*/i, /*end_ns=*/i + 1);
  }
  tracer.stop();
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6);
  // The survivors are the newest four, in chronological order.
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[i].round, 6 + i);
}

TEST_F(TraceTest, StopKeepsEventsReadableClearDiscards) {
  core::Tracer& tracer = core::Tracer::instance();
  tracer.start();
  tracer.record_complete("kept", "", -1, 0, 5);
  tracer.stop();
  EXPECT_EQ(tracer.size(), 1u);          // readable after stop
  tracer.record_complete("late", "", -1, 5, 9);
  EXPECT_EQ(tracer.size(), 1u);          // recording disarmed
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

TEST_F(TraceTest, NowNsIsMonotonicAfterStart) {
  core::Tracer& tracer = core::Tracer::instance();
  tracer.start();
  const std::int64_t a = tracer.now_ns();
  const std::int64_t b = tracer.now_ns();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST_F(TraceTest, SpansAreThreadSafeUnderParallelFor) {
  if (!core::kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  core::Tracer& tracer = core::Tracer::instance();
  tracer.start();
  std::atomic<std::int64_t> chunks{0};
  core::parallel_for(0, 512, /*grain=*/8,
                     [&](std::int64_t begin, std::int64_t end) {
                       CF_TRACE_SPAN("par.chunk");
                       for (std::int64_t i = begin; i < end; ++i) {
                         CF_TRACE_SPAN("par.item");
                       }
                       chunks.fetch_add(1, std::memory_order_relaxed);
                     });
  tracer.stop();
  std::int64_t chunk_events = 0;
  std::int64_t item_events = 0;
  for (const auto& e : tracer.events()) {
    if (std::strcmp(e.name, "par.chunk") == 0) ++chunk_events;
    if (std::strcmp(e.name, "par.item") == 0) {
      ++item_events;
      EXPECT_NE(e.parent, 0u);  // nested inside its chunk span
    }
  }
  EXPECT_EQ(chunk_events, chunks.load());
  EXPECT_EQ(item_events, 512);
}

TEST_F(TraceTest, DrainFollowsBeginEventEndProtocol) {
  class OrderSink final : public core::TraceSink {
   public:
    void begin(std::int64_t dropped) override {
      log += "B" + std::to_string(dropped);
    }
    void event(const core::TraceEvent&) override { log += "e"; }
    void end() override { log += "E"; }
    std::string log;
  };
  core::Tracer& tracer = core::Tracer::instance();
  tracer.start(2);
  for (int i = 0; i < 3; ++i) tracer.record_complete("x", "", -1, i, i + 1);
  tracer.stop();
  OrderSink sink;
  tracer.drain(sink);
  EXPECT_EQ(sink.log, "B1eeE");
  core::NullTraceSink null_sink;
  tracer.drain(null_sink);  // the no-op sink must also survive a drain
}

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAndGaugeBasics) {
  core::MetricRegistry reg;
  core::Counter& c = reg.counter("a.count");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5);
  core::Gauge& g = reg.gauge("a.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(MetricsTest, LookupReturnsStableReferences) {
  core::MetricRegistry reg;
  EXPECT_EQ(&reg.counter("same"), &reg.counter("same"));
  EXPECT_EQ(&reg.gauge("same"), &reg.gauge("same"));  // separate namespace
  EXPECT_EQ(&reg.histogram("same"), &reg.histogram("same"));
  EXPECT_NE(&reg.counter("same"), &reg.counter("other"));
}

TEST(MetricsTest, HistogramStatsAndPercentiles) {
  core::MetricRegistry reg;
  core::Histogram& h = reg.histogram("lat");
  EXPECT_EQ(h.stats().count, 0);
  for (const std::int64_t v : {1, 2, 4, 8, 1000}) h.record(v);
  const core::HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.sum, 1015.0);
  EXPECT_DOUBLE_EQ(s.mean, 203.0);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 1000);
  // Bucket-resolution nearest-rank estimates (rank = q*(n-1)): with five
  // samples p50 lands in 4's bucket and p99 in 8's bucket ([8,16)).
  EXPECT_GE(s.p50, 2.0);
  EXPECT_LE(s.p50, 8.0);
  EXPECT_GE(s.p99, 8.0);
  EXPECT_LE(s.p99, 16.0);
  // A heavy tail does move p99: 99 fast samples + enough slow ones.
  core::Histogram& tail = reg.histogram("tail");
  for (int i = 0; i < 95; ++i) tail.record(1);
  for (int i = 0; i < 5; ++i) tail.record(1000);
  EXPECT_LE(tail.stats().p90, 2.0);
  EXPECT_GE(tail.stats().p99, 512.0);
}

TEST(MetricsTest, SnapshotAndPrefixViews) {
  core::MetricRegistry reg;
  reg.counter("server.rounds").add(3);
  reg.counter("tcp.bytes").add(100);
  reg.gauge("site.site-1.loss").set(0.5);
  reg.gauge("site.site-2.loss").set(0.25);
  reg.gauge("server.acc").set(0.9);
  reg.histogram("train.ms").record(12);
  const core::MetricSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("server.rounds"), 3);
  EXPECT_EQ(snap.histograms.at("train.ms").count, 1);
  const auto sites = snap.gauges_with_prefix("site.");
  EXPECT_EQ(sites.size(), 2u);
  EXPECT_DOUBLE_EQ(sites.at("site.site-1.loss"), 0.5);
  const auto tcp = snap.counters_with_prefix("tcp.");
  EXPECT_EQ(tcp.size(), 1u);
  EXPECT_EQ(tcp.at("tcp.bytes"), 100);
}

TEST(MetricsTest, ResetZeroesValuesButKeepsRegistrations) {
  core::MetricRegistry reg;
  core::Counter& c = reg.counter("c");
  core::Gauge& g = reg.gauge("g");
  core::Histogram& h = reg.histogram("h");
  c.add(7);
  g.set(7.0);
  h.record(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.stats().count, 0);
  EXPECT_EQ(&reg.counter("c"), &c);  // same object, still registered
}

TEST(MetricsTest, ProcessWideInstanceIsSingleton) {
  EXPECT_EQ(&core::MetricRegistry::instance(), &core::MetricRegistry::instance());
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Minimal structural JSON check: balanced brackets/braces outside strings,
/// array-shaped, no trailing garbage. Not a full parser, but catches every
/// way the line-by-line emitter could break (missing commas are caught by
/// the substring assertions in the tests below).
bool looks_like_json_array(const std::string& text) {
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  if (i == text.size() || text[i] != '[') return false;
  int depth = 0;
  bool in_string = false;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;       // skip the escaped char
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '[' || c == '{') ++depth;
    else if (c == ']' || c == '}') {
      if (--depth < 0) return false;
      if (depth == 0) break;  // array closed
    }
  }
  if (depth != 0 || in_string) return false;
  for (++i; i < text.size(); ++i) {
    if (!std::isspace(static_cast<unsigned char>(text[i]))) return false;
  }
  return true;
}

class ExporterTest : public TraceTest {};

TEST_F(ExporterTest, ChromeTraceSinkEmitsValidJsonArray) {
  core::Tracer& tracer = core::Tracer::instance();
  tracer.start(2);
  tracer.record_complete("alpha", "site-1", 0, 1000, 4000);
  tracer.record_complete("beta \"quoted\"\\", "", -1, 2000, 3000);
  tracer.record_complete("gamma", "site-2", 1, 5000, 9000);  // drops "alpha"
  tracer.stop();

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("cppflare_trace_" + std::to_string(::getpid()) + ".json"))
          .string();
  ASSERT_TRUE(flare::write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::filesystem::remove(path);

  EXPECT_TRUE(looks_like_json_array(text)) << text;
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"beta \\\"quoted\\\"\\\\\""), std::string::npos)
      << "names must be JSON-escaped";
  EXPECT_NE(text.find("site-2"), std::string::npos);
  // One event was lost to the 2-slot ring: the exporter must say so.
  EXPECT_NE(text.find("dropped"), std::string::npos);
  EXPECT_EQ(text.find("alpha"), std::string::npos);
}

TEST_F(ExporterTest, WriteChromeTraceFailsCleanlyOnBadPath) {
  core::Tracer::instance().start();
  core::Tracer::instance().stop();
  EXPECT_FALSE(flare::write_chrome_trace("/nonexistent-dir/x/trace.json"));
}

TEST_F(ExporterTest, SummarySinkAggregatesByName) {
  core::Tracer& tracer = core::Tracer::instance();
  tracer.start();
  tracer.record_complete("agg.step", "", 0, 0, 100, 60);
  tracer.record_complete("agg.step", "", 1, 200, 500, 70);
  tracer.record_complete("other", "", -1, 50, 60);
  tracer.stop();
  flare::TraceSummarySink sink;
  tracer.drain(sink);
  ASSERT_EQ(sink.rows().size(), 2u);
  const flare::SpanSummary& s = sink.rows().at("agg.step");
  EXPECT_EQ(s.count, 2);
  EXPECT_EQ(s.wall_ns, 400);
  EXPECT_EQ(s.cpu_ns, 130);
  EXPECT_EQ(s.max_wall_ns, 300);
  const std::string table = flare::write_trace_summary();
  EXPECT_NE(table.find("agg.step"), std::string::npos);
  EXPECT_NE(table.find("other"), std::string::npos);
}

TEST(ObservabilityNames, SiteMetricNameBuildsCanonicalGaugeName) {
  EXPECT_EQ(flare::site_metric_name("site-3", "train_loss"),
            "site.site-3.train_loss");
}

// ---------------------------------------------------------------------------
// Federation integration
// ---------------------------------------------------------------------------

nn::StateDict tiny_model() {
  nn::StateDict d;
  d.insert("w", {{4}, {5.0f, 5.0f, 5.0f, 5.0f}});
  return d;
}

bool bit_equal(const nn::StateDict& a, const nn::StateDict& b) {
  if (!a.congruent_with(b)) return false;
  auto ia = a.entries().begin();
  auto ib = b.entries().begin();
  for (; ia != a.entries().end(); ++ia, ++ib) {
    if (std::memcmp(ia->second.values.data(), ib->second.values.data(),
                    ia->second.values.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

/// Deterministic learner (same contract as faults/poison tests): nudges
/// every weight halfway toward a per-site target, so two runs over the same
/// rounds agree bit-for-bit.
class NudgeLearner : public flare::Learner {
 public:
  NudgeLearner(std::string site, float target)
      : site_(std::move(site)), target_(target) {}

  flare::Dxo train(const flare::Dxo& global, const flare::FLContext&) override {
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v += 0.5f * (target_ - v);
    }
    flare::Dxo update(flare::DxoKind::kWeights, updated);
    update.set_meta_int(flare::Dxo::kMetaNumSamples, 10);
    update.set_meta_double(flare::Dxo::kMetaTrainLoss, 1.0);
    update.set_meta_double(flare::Dxo::kMetaValidAcc, 0.5);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float target_;
};

flare::SimulatorRunner make_runner(flare::SimulatorConfig config) {
  return flare::SimulatorRunner(
      config, tiny_model(), std::make_unique<flare::FedAvgAggregator>(true),
      [](std::int64_t i, const std::string& name) {
        return std::make_shared<NudgeLearner>(name, static_cast<float>(i));
      });
}

class TracedFederationTest : public TraceTest {};

TEST_F(TracedFederationTest, TracedRunIsBitIdenticalToUntracedRun) {
  if (!core::kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  flare::SimulatorConfig config;
  config.job_id = "trace-equal-job";
  config.num_clients = 8;
  config.num_rounds = 3;

  flare::SimulationResult clean = make_runner(config).run();
  ASSERT_FALSE(clean.aborted);

  config.trace = true;
  const std::string json_path =
      (std::filesystem::temp_directory_path() /
       ("cppflare_fed_trace_" + std::to_string(::getpid()) + ".json"))
          .string();
  config.trace_json_path = json_path;
  flare::SimulationResult traced = make_runner(config).run();
  ASSERT_FALSE(traced.aborted);

  // Acceptance line: observation must not perturb the federation.
  EXPECT_TRUE(bit_equal(clean.final_model, traced.final_model));

  // Acceptance line: the exported timeline is valid Chrome-tracing JSON
  // carrying a per-round submit span for every site, plus the round and
  // whole-run spans.
  std::ifstream in(json_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::filesystem::remove(json_path);
  EXPECT_TRUE(looks_like_json_array(text));
  EXPECT_NE(text.find("simulator.run"), std::string::npos);
  EXPECT_NE(text.find("server.aggregate"), std::string::npos);

  std::set<std::pair<std::string, std::int64_t>> submits;
  std::set<std::int64_t> rounds;
  for (const auto& e : core::Tracer::instance().events()) {
    if (std::strcmp(e.name, "server.submit") == 0) {
      submits.insert({e.site, e.round});
    }
    if (std::strcmp(e.name, "server.round") == 0) rounds.insert(e.round);
  }
  for (std::int64_t r = 0; r < config.num_rounds; ++r) {
    EXPECT_TRUE(rounds.count(r)) << "missing server.round span for round " << r;
    for (std::int64_t i = 1; i <= config.num_clients; ++i) {
      const std::string site = "site-" + std::to_string(i);
      EXPECT_TRUE(submits.count({site, r}))
          << "missing server.submit span for " << site << " round " << r;
    }
  }

  // The registry snapshot consolidates the old ad-hoc result fields.
  EXPECT_EQ(traced.metrics.counters.at(
                flare::metric_names::kServerRoundsCompleted),
            config.num_rounds);
  EXPECT_EQ(traced.metrics.counters.at(
                flare::metric_names::kServerContribAccepted),
            config.num_rounds * config.num_clients);
  EXPECT_EQ(traced.site_metrics().at("site.site-5.num_samples"), 10.0);
  EXPECT_EQ(traced.site_metrics().at("site.site-5.round"),
            static_cast<double>(config.num_rounds - 1));
}

TEST_F(TracedFederationTest, AbortedRunRetainsPerSiteMetrics) {
  // Regression for the pre-consolidation bug: when the validator rejected
  // every contribution and the run aborted mid-round, SimulationResult
  // carried no per-site detail at all. The per-site gauges are recorded
  // before validation, so the abort report still shows what each site sent.
  flare::SimulatorConfig config;
  config.job_id = "trace-abort-job";
  config.num_clients = 2;
  config.num_rounds = 2;
  config.validator.max_sample_count = 1;  // NudgeLearner claims 10 samples
  flare::SimulationResult result = make_runner(config).run();
  ASSERT_TRUE(result.aborted);
  EXPECT_NE(result.abort_reason.find("rejected"), std::string::npos);
  for (const std::string site : {"site-1", "site-2"}) {
    EXPECT_EQ(result.site_metrics().at("site." + site + ".num_samples"), 10.0)
        << "abort lost " << site << "'s last reported state";
    EXPECT_EQ(result.site_metrics().at("site." + site + ".round"), 0.0);
  }
  EXPECT_GE(result.metrics.counters.at("server.rejections.bad_sample_count"), 2);
}

}  // namespace
}  // namespace cppflare
