#include "flare/messages.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace cppflare::flare {
namespace {

TEST(Messages, RegisterRoundTrip) {
  const auto frame = pack(RegisterRequest{"site-3", "tok-abc"});
  EXPECT_EQ(peek_type(frame), MsgType::kRegister);
  const RegisterRequest m = decode_register(frame);
  EXPECT_EQ(m.site_name, "site-3");
  EXPECT_EQ(m.token, "tok-abc");
}

TEST(Messages, RegisterAckRoundTrip) {
  const auto frame = pack(RegisterAck{true, "sess-1", "welcome"});
  const RegisterAck m = decode_register_ack(frame);
  EXPECT_TRUE(m.accepted);
  EXPECT_EQ(m.session_id, "sess-1");
  EXPECT_EQ(m.message, "welcome");
}

TEST(Messages, GetTaskRoundTrip) {
  const auto frame = pack(GetTaskRequest{"sess-9"});
  EXPECT_EQ(decode_get_task(frame).session_id, "sess-9");
}

TEST(Messages, TaskRoundTripWithPayload) {
  nn::StateDict d;
  d.insert("w", {{2}, {1.0f, 2.0f}});
  TaskMessage t;
  t.task = TaskKind::kTrain;
  t.round = 3;
  t.total_rounds = 10;
  t.payload = Dxo(DxoKind::kWeights, d);
  const auto frame = pack(t);
  const TaskMessage m = decode_task(frame);
  EXPECT_EQ(m.task, TaskKind::kTrain);
  EXPECT_EQ(m.round, 3);
  EXPECT_EQ(m.total_rounds, 10);
  EXPECT_EQ(m.payload.data().at("w").values[1], 2.0f);
}

TEST(Messages, SubmitRoundTrip) {
  SubmitUpdateRequest req;
  req.session_id = "s";
  req.round = 7;
  req.payload.set_meta_int(Dxo::kMetaNumSamples, 55);
  const SubmitUpdateRequest m = decode_submit(pack(req));
  EXPECT_EQ(m.session_id, "s");
  EXPECT_EQ(m.round, 7);
  EXPECT_EQ(m.payload.meta_int(Dxo::kMetaNumSamples), 55);
}

TEST(Messages, SubmitAckAndErrorRoundTrip) {
  const SubmitAck a = decode_submit_ack(pack(SubmitAck{false, "stale"}));
  EXPECT_FALSE(a.accepted);
  EXPECT_EQ(a.message, "stale");
  const ErrorMessage e = decode_error(pack(ErrorMessage{"bad"}));
  EXPECT_EQ(e.message, "bad");
}

TEST(Messages, UnmaskRequestRoundTrip) {
  nn::StateDict skel;
  skel.insert("w", {{2}, {0.0f, 0.0f}});
  UnmaskRequest req;
  req.round = 6;
  req.wave = 2;
  req.dropped = {"site-3", "site-7"};
  req.skeleton = Dxo(DxoKind::kWeights, skel);
  const auto frame = pack(req);
  EXPECT_EQ(peek_type(frame), MsgType::kUnmaskRequest);
  const UnmaskRequest m = decode_unmask_request(frame);
  EXPECT_EQ(m.round, 6);
  EXPECT_EQ(m.wave, 2);
  EXPECT_EQ(m.dropped, req.dropped);
  EXPECT_EQ(m.skeleton.data().at("w").values.size(), 2u);
  // Empty dropped set survives too (a degenerate but legal wave).
  const UnmaskRequest empty =
      decode_unmask_request(pack(UnmaskRequest{4, 0, {}, Dxo{}}));
  EXPECT_TRUE(empty.dropped.empty());
}

TEST(Messages, UnmaskRequestWithoutSkeletonStillDecodes) {
  // A pre-durability frame stops after the dropped list; the decoder must
  // accept it with an empty skeleton (lenient trailing-field decode).
  core::ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(MsgType::kUnmaskRequest));
  w.write_i64(9);
  w.write_i64(1);
  w.write_u32(1);
  w.write_string("site-4");
  const UnmaskRequest m = decode_unmask_request(w.take());
  EXPECT_EQ(m.round, 9);
  EXPECT_EQ(m.dropped, std::vector<std::string>{"site-4"});
  EXPECT_TRUE(m.skeleton.data().empty());
}

TEST(Messages, UnmaskResponseRoundTrip) {
  nn::StateDict d;
  d.insert("w", {{2}, {0.5f, -1.5f}});
  UnmaskResponse resp;
  resp.session_id = "sess-2";
  resp.round = 6;
  resp.wave = 2;
  resp.share = Dxo(DxoKind::kWeights, d);
  const auto frame = pack(resp);
  EXPECT_EQ(peek_type(frame), MsgType::kUnmaskResponse);
  const UnmaskResponse m = decode_unmask_response(frame);
  EXPECT_EQ(m.session_id, "sess-2");
  EXPECT_EQ(m.round, 6);
  EXPECT_EQ(m.wave, 2);
  EXPECT_EQ(m.share.data().at("w").values[1], -1.5f);
}

TEST(Messages, UnmaskFramesRejectWrongTypeAndTruncation) {
  EXPECT_THROW(decode_unmask_request(pack(GetTaskRequest{"s"})), ProtocolError);
  EXPECT_THROW(decode_unmask_response(pack(GetTaskRequest{"s"})), ProtocolError);
  auto frame = pack(UnmaskRequest{1, 0, {"site-1"}, Dxo{}});
  frame.resize(frame.size() - 3);
  EXPECT_THROW(decode_unmask_request(frame), SerializationError);
}

TEST(Messages, SubmitAckCarriesEveryRejectReason) {
  for (std::uint8_t raw = 0;
       raw <= static_cast<std::uint8_t>(RejectReason::kRecoveryInProgress);
       ++raw) {
    const RejectReason reason = static_cast<RejectReason>(raw);
    const SubmitAck a =
        decode_submit_ack(pack(SubmitAck{false, "why", reason}));
    EXPECT_EQ(a.reason, reason);
    EXPECT_STRNE(reject_reason_name(reason), "");
  }
  // Accepted acks default to kNone.
  const SubmitAck ok = decode_submit_ack(pack(SubmitAck{true, "ok"}));
  EXPECT_EQ(ok.reason, RejectReason::kNone);
}

TEST(Messages, SubmitAckRejectsUnknownReasonByte) {
  // Corrupt the trailing reason byte past the enum range: the decoder must
  // refuse rather than cast garbage into the enum.
  std::vector<std::uint8_t> frame = pack(SubmitAck{false, "x"});
  frame.back() = 200;
  EXPECT_THROW(decode_submit_ack(frame), ProtocolError);
}

TEST(Messages, PeekTypeRejectsGarbage) {
  EXPECT_THROW(peek_type({}), ProtocolError);
  EXPECT_THROW(peek_type({0}), ProtocolError);
  EXPECT_THROW(peek_type({200}), ProtocolError);
}

TEST(Messages, DecodeWrongTypeThrows) {
  const auto frame = pack(GetTaskRequest{"s"});
  EXPECT_THROW(decode_register(frame), ProtocolError);
  EXPECT_THROW(decode_submit(frame), ProtocolError);
}

TEST(Messages, TruncatedFrameThrows) {
  auto frame = pack(RegisterRequest{"site-1", "token"});
  frame.resize(frame.size() / 2);
  EXPECT_THROW(decode_register(frame), SerializationError);
}

TEST(Messages, BadTaskKindRejected) {
  core::ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(MsgType::kTask));
  w.write_u8(9);  // invalid TaskKind
  EXPECT_THROW(decode_task(w.bytes()), ProtocolError);
}

}  // namespace
}  // namespace cppflare::flare
