// Tests for Byzantine-robust aggregation and straggler (round-deadline)
// handling.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/logging.h"
#include "flare/robust_aggregator.h"
#include "flare/simulator.h"

namespace cppflare::flare {
namespace {

nn::StateDict dict_of(std::vector<float> w) {
  nn::StateDict d;
  d.insert("w", {{static_cast<std::int64_t>(w.size())}, std::move(w)});
  return d;
}

Dxo weights_dxo(std::vector<float> w, std::int64_t samples = 1) {
  Dxo dxo(DxoKind::kWeights, dict_of(std::move(w)));
  dxo.set_meta_int(Dxo::kMetaNumSamples, samples);
  return dxo;
}

class QuietLogs : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
  }
  void TearDown() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }
};

using RobustAggTest = QuietLogs;
using DeadlineTest = QuietLogs;

TEST_F(RobustAggTest, MedianOddCount) {
  MedianAggregator agg;
  agg.reset(dict_of({0, 0}), 0);
  agg.accept("a", weights_dxo({1, 10}));
  agg.accept("b", weights_dxo({2, 20}));
  agg.accept("c", weights_dxo({3, 90}));
  const nn::StateDict out = agg.aggregate();
  EXPECT_FLOAT_EQ(out.at("w").values[0], 2.0f);
  EXPECT_FLOAT_EQ(out.at("w").values[1], 20.0f);
}

TEST_F(RobustAggTest, MedianEvenCountAveragesMiddle) {
  MedianAggregator agg;
  agg.reset(dict_of({0}), 0);
  agg.accept("a", weights_dxo({1}));
  agg.accept("b", weights_dxo({2}));
  agg.accept("c", weights_dxo({4}));
  agg.accept("d", weights_dxo({100}));
  EXPECT_FLOAT_EQ(agg.aggregate().at("w").values[0], 3.0f);
}

TEST_F(RobustAggTest, MedianResistsPoisonedClient) {
  // One malicious site sends a huge update; the median must stay near the
  // honest values while FedAvg would be dragged away.
  MedianAggregator median;
  FedAvgAggregator fedavg(false);
  for (Aggregator* agg : {static_cast<Aggregator*>(&median),
                          static_cast<Aggregator*>(&fedavg)}) {
    agg->reset(dict_of({0}), 0);
    agg->accept("h1", weights_dxo({1.0f}));
    agg->accept("h2", weights_dxo({1.1f}));
    agg->accept("h3", weights_dxo({0.9f}));
    agg->accept("evil", weights_dxo({1000.0f}));
  }
  EXPECT_NEAR(median.aggregate().at("w").values[0], 1.05f, 0.06f);
  EXPECT_GT(fedavg.aggregate().at("w").values[0], 200.0f);
}

TEST_F(RobustAggTest, MedianIgnoresClaimedSampleCounts) {
  MedianAggregator agg;
  agg.reset(dict_of({0}), 0);
  agg.accept("a", weights_dxo({1}, 1));
  agg.accept("b", weights_dxo({2}, 1));
  agg.accept("evil", weights_dxo({99}, 1000000));  // huge claimed weight
  EXPECT_FLOAT_EQ(agg.aggregate().at("w").values[0], 2.0f);
}

TEST_F(RobustAggTest, TrimmedMeanDropsTails) {
  TrimmedMeanAggregator agg(1);
  agg.reset(dict_of({0}), 0);
  agg.accept("a", weights_dxo({-100}));
  agg.accept("b", weights_dxo({1}));
  agg.accept("c", weights_dxo({3}));
  agg.accept("d", weights_dxo({500}));
  EXPECT_FLOAT_EQ(agg.aggregate().at("w").values[0], 2.0f);
}

TEST_F(RobustAggTest, TrimmedMeanNeedsEnoughContributions) {
  TrimmedMeanAggregator agg(1);
  agg.reset(dict_of({0}), 0);
  agg.accept("a", weights_dxo({1}));
  agg.accept("b", weights_dxo({2}));
  EXPECT_THROW(agg.aggregate(), Error);
}

TEST_F(RobustAggTest, SharedValidationRules) {
  MedianAggregator agg;
  agg.reset(dict_of({0, 0}), 3);
  EXPECT_FALSE(agg.accept("a", Dxo{}));                    // metrics-only
  EXPECT_TRUE(agg.accept("a", weights_dxo({1, 1})));
  EXPECT_FALSE(agg.accept("a", weights_dxo({2, 2})));      // duplicate
  EXPECT_FALSE(agg.accept("b", weights_dxo({1})));         // incongruent
  Dxo diff(DxoKind::kWeightDiff, dict_of({1, 1}));
  diff.set_meta_int(Dxo::kMetaNumSamples, 1);
  EXPECT_FALSE(agg.accept("c", diff));                     // mixed kinds
  EXPECT_EQ(agg.accepted_count(), 1);
  EXPECT_EQ(agg.metrics().round, 3);
}

TEST_F(RobustAggTest, WeightDiffModeAppliesDeltaToGlobal) {
  MedianAggregator agg;
  agg.reset(dict_of({10}), 0);
  Dxo d1(DxoKind::kWeightDiff, dict_of({1}));
  d1.set_meta_int(Dxo::kMetaNumSamples, 1);
  Dxo d2(DxoKind::kWeightDiff, dict_of({3}));
  d2.set_meta_int(Dxo::kMetaNumSamples, 1);
  Dxo d3(DxoKind::kWeightDiff, dict_of({2}));
  d3.set_meta_int(Dxo::kMetaNumSamples, 1);
  agg.accept("a", d1);
  agg.accept("b", d2);
  agg.accept("c", d3);
  EXPECT_FLOAT_EQ(agg.aggregate().at("w").values[0], 12.0f);
}

TEST_F(RobustAggTest, EmptyRoundThrows) {
  MedianAggregator agg;
  agg.reset(dict_of({0}), 0);
  EXPECT_THROW(agg.aggregate(), Error);
}

TEST_F(RobustAggTest, EndToEndFederationWithPoisonedSite) {
  // Full simulator run: 3 honest sites pull the model toward 2.0, one
  // poisoned site toward 1e6. Median federation must converge near 2.
  class SiteLearner : public Learner {
   public:
    SiteLearner(std::string site, float target)
        : site_(std::move(site)), target_(target) {}
    Dxo train(const Dxo& global, const FLContext&) override {
      nn::StateDict d = global.data();
      for (auto& [k, blob] : d.entries()) {
        for (float& x : blob.values) x += 0.5f * (target_ - x);
      }
      Dxo update(DxoKind::kWeights, d);
      update.set_meta_int(Dxo::kMetaNumSamples, 10);
      return update;
    }
    std::string site_name() const override { return site_; }

   private:
    std::string site_;
    float target_;
  };

  SimulatorConfig config;
  config.num_clients = 4;
  config.num_rounds = 10;
  SimulatorRunner runner(config, dict_of({0.0f}),
                         std::make_unique<MedianAggregator>(),
                         [](std::int64_t i, const std::string& name) {
                           const float target = i == 3 ? 1e6f : 2.0f;
                           return std::make_shared<SiteLearner>(name, target);
                         });
  const SimulationResult result = runner.run();
  EXPECT_NEAR(result.final_model.at("w").values[0], 2.0f, 0.1f);
}

TEST_F(DeadlineTest, RoundClosesWithoutStraggler) {
  // 3 clients, min_clients 2, 150 ms deadline; one client sleeps 10 s per
  // round. The run must finish quickly with 2 contributions per round.
  class FastLearner : public Learner {
   public:
    explicit FastLearner(std::string site) : site_(std::move(site)) {}
    Dxo train(const Dxo& global, const FLContext&) override {
      Dxo update(DxoKind::kWeights, global.data());
      update.set_meta_int(Dxo::kMetaNumSamples, 10);
      return update;
    }
    std::string site_name() const override { return site_; }

   private:
    std::string site_;
  };
  class SlowLearner : public FastLearner {
   public:
    using FastLearner::FastLearner;
    Dxo train(const Dxo& global, const FLContext& ctx) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(800));
      return FastLearner::train(global, ctx);
    }
  };

  const auto registry = Provisioner("deadline_test", 3).provision_sites(3);
  ServerConfig config;
  config.job_id = "deadline_test";
  config.num_rounds = 2;
  config.min_clients = 2;
  config.expected_clients = 3;
  config.round_deadline_ms = 150;
  FederatedServer server(config, registry, dict_of({1.0f}),
                         std::make_unique<FedAvgAggregator>(true));

  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<FederatedClient>> clients;
  for (int i = 0; i < 3; ++i) {
    const std::string name = "site-" + std::to_string(i + 1);
    ClientConfig cc;
    cc.job_id = "deadline_test";
    std::shared_ptr<Learner> learner =
        i == 2 ? std::make_shared<SlowLearner>(name)
               : std::make_shared<FastLearner>(name);
    clients.push_back(std::make_unique<FederatedClient>(
        cc, registry.at(name),
        std::make_unique<InProcConnection>(server.dispatcher()), learner));
  }
  const auto start = std::chrono::steady_clock::now();
  for (auto& c : clients) {
    threads.emplace_back([&c] { c->run(); });
  }
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_TRUE(server.finished());
  const auto history = server.history();
  ASSERT_EQ(history.size(), 2u);
  // At least the first round closed at quorum without the straggler.
  EXPECT_EQ(history[0].num_contributions, 2);
  // Without the deadline this would take >= 2 * 800 ms of straggler time
  // per round plus coordination; with it the run ends much sooner than the
  // straggler's 2 full rounds.
  EXPECT_LT(secs, 3.0);
}

}  // namespace
}  // namespace cppflare::flare
