#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "data/clinical_gen.h"
#include "data/dataset.h"
#include "data/vocab.h"

namespace cppflare::data {
namespace {

TEST(Vocabulary, SpecialTokensPreRegistered) {
  Vocabulary v;
  EXPECT_EQ(v.size(), Vocabulary::kNumSpecial);
  EXPECT_EQ(v.id_of("[PAD]"), Vocabulary::kPad);
  EXPECT_EQ(v.id_of("[UNK]"), Vocabulary::kUnk);
  EXPECT_EQ(v.id_of("[CLS]"), Vocabulary::kCls);
  EXPECT_EQ(v.id_of("[SEP]"), Vocabulary::kSep);
  EXPECT_EQ(v.id_of("[MASK]"), Vocabulary::kMask);
}

TEST(Vocabulary, AddIsIdempotent) {
  Vocabulary v;
  const auto id1 = v.add("RX:aspirin");
  const auto id2 = v.add("RX:aspirin");
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(v.size(), Vocabulary::kNumSpecial + 1);
}

TEST(Vocabulary, UnknownMapsToUnk) {
  Vocabulary v;
  EXPECT_EQ(v.id_of("never-seen"), Vocabulary::kUnk);
}

TEST(Vocabulary, TokenOfValidatesRange) {
  Vocabulary v;
  EXPECT_EQ(v.token_of(Vocabulary::kMask), "[MASK]");
  EXPECT_THROW(v.token_of(-1), Error);
  EXPECT_THROW(v.token_of(v.size()), Error);
}

TEST(Vocabulary, SerializeRoundTrip) {
  Vocabulary v;
  v.add("RX:a");
  v.add("DX:b");
  core::ByteWriter w;
  v.serialize(w);
  core::ByteReader r(w.bytes());
  Vocabulary u = Vocabulary::deserialize(r);
  EXPECT_EQ(u.size(), v.size());
  EXPECT_EQ(u.id_of("DX:b"), v.id_of("DX:b"));
}

TEST(Vocabulary, IsSpecialHelper) {
  EXPECT_TRUE(Vocabulary::is_special(0));
  EXPECT_TRUE(Vocabulary::is_special(4));
  EXPECT_FALSE(Vocabulary::is_special(5));
  EXPECT_EQ(Vocabulary::first_regular_id(), 5);
}

class GeneratorTest : public ::testing::Test {
 protected:
  static ClinicalGenConfig small_config() {
    ClinicalGenConfig c;
    c.num_drugs = 40;
    c.num_diagnoses = 40;
    c.num_procedures = 20;
    c.min_events = 6;
    c.max_events = 20;
    return c;
  }
};

TEST_F(GeneratorTest, DeterministicAcrossInstances) {
  ClinicalCohortGenerator g1(small_config()), g2(small_config());
  const auto a = g1.generate_labeled(20, 5);
  const auto b = g2.generate_labeled(20, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].codes, b[i].codes);
    EXPECT_EQ(a[i].label, b[i].label);
  }
}

TEST_F(GeneratorTest, DifferentSeedsDifferentCohorts) {
  ClinicalCohortGenerator g(small_config());
  const auto a = g.generate_labeled(10, 1);
  const auto b = g.generate_labeled(10, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) any_diff |= a[i].codes != b[i].codes;
  EXPECT_TRUE(any_diff);
}

TEST_F(GeneratorTest, EveryPatientHasClopidogrel) {
  ClinicalCohortGenerator g(small_config());
  for (const auto& rec : g.generate_labeled(50, 3)) {
    EXPECT_NE(std::find(rec.codes.begin(), rec.codes.end(), "RX:clopidogrel"),
              rec.codes.end());
  }
}

TEST_F(GeneratorTest, PositiveRateNearPaperValue) {
  // Paper: 1,824 / 8,638 = 21.1%.
  ClinicalCohortGenerator g(small_config());
  const auto records = g.generate_labeled(4000, 7);
  double pos = 0;
  for (const auto& r : records) pos += r.label;
  const double rate = pos / static_cast<double>(records.size());
  EXPECT_GT(rate, 0.16);
  EXPECT_LT(rate, 0.27);
}

TEST_F(GeneratorTest, RiskScoreIsOrderSensitive) {
  ClinicalCohortGenerator g(small_config());
  // PPI after clopidogrel raises risk; before does not.
  const double after = g.risk_score({"RX:clopidogrel", "RX:omeprazole"});
  const double before = g.risk_score({"RX:omeprazole", "RX:clopidogrel"});
  EXPECT_GT(after, before);
}

TEST_F(GeneratorTest, GenotypePresenceRaisesRisk) {
  ClinicalCohortGenerator g(small_config());
  const double with_lof = g.risk_score({"GX:cyp2c19_lof", "RX:clopidogrel"});
  const double without = g.risk_score({"RX:clopidogrel"});
  EXPECT_GT(with_lof, without);
}

TEST_F(GeneratorTest, ProtectiveMotifLowersRisk) {
  ClinicalCohortGenerator g(small_config());
  const double with_statin =
      g.risk_score({"RX:clopidogrel", "RX:atorvastatin"});
  const double without = g.risk_score({"RX:clopidogrel"});
  EXPECT_LT(with_statin, without);
}

TEST_F(GeneratorTest, UniverseRespectsConfiguredSizes) {
  ClinicalGenConfig c = small_config();
  ClinicalCohortGenerator g(c);
  // drugs + diagnoses + procedures + 2 genotype markers.
  EXPECT_EQ(static_cast<std::int64_t>(g.code_universe().size()),
            c.num_drugs + c.num_diagnoses + c.num_procedures + 2);
  Vocabulary v = g.build_vocabulary();
  EXPECT_EQ(v.size(), static_cast<std::int64_t>(g.code_universe().size()) +
                          Vocabulary::kNumSpecial);
}

TEST_F(GeneratorTest, SequenceLengthsWithinBounds) {
  ClinicalGenConfig c = small_config();
  ClinicalCohortGenerator g(c);
  for (const auto& rec : g.generate_labeled(100, 11)) {
    // base events + clopidogrel insert + optional genotype prefix
    EXPECT_GE(static_cast<std::int64_t>(rec.codes.size()), c.min_events + 1);
    EXPECT_LE(static_cast<std::int64_t>(rec.codes.size()), c.max_events + 2);
  }
}

TEST_F(GeneratorTest, UnlabeledSequencesShareEventModel) {
  ClinicalCohortGenerator g(small_config());
  const auto seqs = g.generate_unlabeled(30, 13);
  EXPECT_EQ(seqs.size(), 30u);
  for (const auto& s : seqs) {
    EXPECT_NE(std::find(s.begin(), s.end(), "RX:clopidogrel"), s.end());
  }
}

TEST(Tokenizer, EncodeAddsClsAndPads) {
  Vocabulary v;
  const auto a = v.add("RX:a");
  ClinicalTokenizer tok(v, 6);
  Sample s = tok.encode({"RX:a", "RX:a"}, 1);
  EXPECT_EQ(s.ids.size(), 6u);
  EXPECT_EQ(s.ids[0], Vocabulary::kCls);
  EXPECT_EQ(s.ids[1], a);
  EXPECT_EQ(s.ids[2], a);
  EXPECT_EQ(s.ids[3], Vocabulary::kPad);
  EXPECT_EQ(s.length, 3);
  EXPECT_EQ(s.label, 1);
}

TEST(Tokenizer, TruncatesLongSequences) {
  Vocabulary v;
  v.add("RX:a");
  ClinicalTokenizer tok(v, 4);
  Sample s = tok.encode(std::vector<std::string>(10, "RX:a"));
  EXPECT_EQ(s.length, 4);
  EXPECT_EQ(s.ids.size(), 4u);
}

TEST(Tokenizer, UnknownCodesBecomeUnk) {
  Vocabulary v;
  ClinicalTokenizer tok(v, 4);
  Sample s = tok.encode({"mystery"});
  EXPECT_EQ(s.ids[1], Vocabulary::kUnk);
}

TEST(DatasetOps, PositiveRate) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    Sample s;
    s.ids = {0};
    s.length = 1;
    s.label = i < 3 ? 1 : 0;
    d.add(s);
  }
  EXPECT_DOUBLE_EQ(d.positive_rate(), 0.3);
}

TEST(DatasetOps, SubsetAndBoundsCheck) {
  Dataset d;
  for (int i = 0; i < 5; ++i) {
    Sample s;
    s.ids = {static_cast<std::int64_t>(i)};
    s.length = 1;
    d.add(s);
  }
  Dataset sub = d.subset({4, 0});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub[0].ids[0], 4);
  EXPECT_THROW(d.subset({5}), Error);
}

TEST(DatasetOps, SplitPartitionsWithoutLoss) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    Sample s;
    s.ids = {static_cast<std::int64_t>(i)};
    s.length = 1;
    d.add(s);
  }
  core::Rng rng(3);
  auto [a, b] = d.split(3, rng);
  EXPECT_EQ(a.size(), 3);
  EXPECT_EQ(b.size(), 7);
  std::set<std::int64_t> seen;
  for (std::int64_t i = 0; i < a.size(); ++i) seen.insert(a[i].ids[0]);
  for (std::int64_t i = 0; i < b.size(); ++i) seen.insert(b[i].ids[0]);
  EXPECT_EQ(seen.size(), 10u);
}

TEST(DataLoaderTest, CoversAllSamplesEachEpoch) {
  Dataset d;
  for (int i = 0; i < 10; ++i) {
    Sample s;
    s.ids = {static_cast<std::int64_t>(i), 0};
    s.length = 1;
    d.add(s);
  }
  DataLoader loader(d, 3, /*shuffle=*/true, core::Rng(5));
  EXPECT_EQ(loader.batches_per_epoch(), 4);
  const auto batches = loader.epoch();
  ASSERT_EQ(batches.size(), 4u);
  EXPECT_EQ(batches.back().batch_size, 1);  // 10 = 3+3+3+1
  std::set<std::int64_t> seen;
  for (const auto& b : batches) {
    for (std::int64_t r = 0; r < b.batch_size; ++r) seen.insert(b.ids[r * 2]);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(DataLoaderTest, ShuffleChangesOrderAcrossEpochs) {
  Dataset d;
  for (int i = 0; i < 32; ++i) {
    Sample s;
    s.ids = {static_cast<std::int64_t>(i)};
    s.length = 1;
    d.add(s);
  }
  DataLoader loader(d, 32, true, core::Rng(6));
  const auto e1 = loader.epoch();
  const auto e2 = loader.epoch();
  EXPECT_NE(e1[0].ids, e2[0].ids);
}

TEST(DataLoaderTest, NoShuffleKeepsOrder) {
  Dataset d;
  for (int i = 0; i < 4; ++i) {
    Sample s;
    s.ids = {static_cast<std::int64_t>(i)};
    s.length = 1;
    d.add(s);
  }
  DataLoader loader(d, 2, false, core::Rng(7));
  const auto batches = loader.epoch();
  EXPECT_EQ(batches[0].ids, (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(batches[1].ids, (std::vector<std::int64_t>{2, 3}));
}

TEST(CollateTest, FlattensRowMajor) {
  std::vector<Sample> samples(2);
  samples[0].ids = {1, 2};
  samples[0].length = 2;
  samples[0].label = 1;
  samples[1].ids = {3, 4};
  samples[1].length = 1;
  samples[1].label = 0;
  Batch b = collate(samples, {0, 1}, 0, 2);
  EXPECT_EQ(b.ids, (std::vector<std::int64_t>{1, 2, 3, 4}));
  EXPECT_EQ(b.lengths, (std::vector<std::int64_t>{2, 1}));
  EXPECT_EQ(b.labels, (std::vector<std::int64_t>{1, 0}));
  EXPECT_EQ(b.seq_len, 2);
}

}  // namespace
}  // namespace cppflare::data
