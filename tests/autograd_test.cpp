// Numerical gradient checks for every differentiable op. Each check builds
// a small random problem, reduces it to a scalar, and compares analytic
// gradients with central differences.
#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "test_util.h"

namespace cppflare::tensor {
namespace {

using cppflare::testing::expect_gradients_close;

Tensor rand_input(Shape shape, std::uint64_t seed, float scale = 1.0f) {
  core::Rng rng(seed);
  return Tensor::randn(std::move(shape), rng, 0.0f, scale, /*requires_grad=*/true);
}

TEST(AutogradElementwise, Add) {
  Tensor a = rand_input({2, 3}, 1), b = rand_input({2, 3}, 2);
  expect_gradients_close([&] { return sum_all(mul(add(a, b), add(a, b))); }, {a, b});
}

TEST(AutogradElementwise, Sub) {
  Tensor a = rand_input({4}, 3), b = rand_input({4}, 4);
  expect_gradients_close([&] { return sum_all(mul(sub(a, b), sub(a, b))); }, {a, b});
}

TEST(AutogradElementwise, Mul) {
  Tensor a = rand_input({3, 2}, 5), b = rand_input({3, 2}, 6);
  expect_gradients_close([&] { return sum_all(mul(a, b)); }, {a, b});
}

TEST(AutogradElementwise, ScalarOps) {
  Tensor a = rand_input({5}, 7);
  expect_gradients_close(
      [&] { return sum_all(mul_scalar(add_scalar(a, 1.5f), -2.0f)); }, {a});
}

TEST(AutogradElementwise, AddBias) {
  Tensor x = rand_input({3, 4}, 8);
  Tensor b = rand_input({4}, 9);
  expect_gradients_close(
      [&] { return sum_all(mul(add_bias(x, b), add_bias(x, b))); }, {x, b});
}

TEST(AutogradActivations, Tanh) {
  Tensor a = rand_input({6}, 10);
  expect_gradients_close([&] { return sum_all(mul(tanh_op(a), a)); }, {a});
}

TEST(AutogradActivations, Sigmoid) {
  Tensor a = rand_input({6}, 11);
  expect_gradients_close([&] { return sum_all(mul(sigmoid(a), a)); }, {a});
}

TEST(AutogradActivations, Gelu) {
  Tensor a = rand_input({6}, 12);
  expect_gradients_close([&] { return sum_all(gelu(a)); }, {a}, 1e-2f, 5e-2f, 1e-2f);
}

TEST(AutogradActivations, ReluAwayFromKink) {
  // Keep inputs away from 0 where the subgradient is ambiguous.
  Tensor a = Tensor::from_data({4}, {-2.0f, -1.0f, 1.0f, 2.0f}, true);
  expect_gradients_close([&] { return sum_all(mul(relu(a), a)); }, {a});
}

TEST(AutogradMatmul, Matmul) {
  Tensor a = rand_input({3, 4}, 13), b = rand_input({4, 2}, 14);
  expect_gradients_close([&] { return sum_all(mul(matmul(a, b), matmul(a, b))); },
                         {a, b});
}

TEST(AutogradMatmul, LinearWithBias) {
  Tensor x = rand_input({3, 4}, 15);
  Tensor w = rand_input({2, 4}, 16);
  Tensor b = rand_input({2}, 17);
  expect_gradients_close([&] { return sum_all(mul(linear(x, w, b), linear(x, w, b))); },
                         {x, w, b});
}

TEST(AutogradMatmul, Bmm) {
  Tensor a = rand_input({2, 2, 3}, 18), b = rand_input({2, 3, 2}, 19);
  expect_gradients_close([&] { return sum_all(mul(bmm(a, b), bmm(a, b))); }, {a, b});
}

TEST(AutogradMatmul, BmmNt) {
  Tensor a = rand_input({2, 2, 3}, 20), b = rand_input({2, 4, 3}, 21);
  expect_gradients_close([&] { return sum_all(mul(bmm_nt(a, b), bmm_nt(a, b))); },
                         {a, b});
}

TEST(AutogradShape, Reshape) {
  Tensor a = rand_input({2, 6}, 22);
  expect_gradients_close(
      [&] {
        Tensor r = reshape(a, {3, 4});
        return sum_all(mul(r, r));
      },
      {a});
}

TEST(AutogradShape, Permute) {
  Tensor a = rand_input({2, 3, 2, 2}, 23);
  expect_gradients_close(
      [&] {
        Tensor p = permute(a, {0, 2, 1, 3});
        return sum_all(mul(p, p));
      },
      {a});
}

TEST(AutogradShape, SelectDim1) {
  Tensor a = rand_input({2, 3, 4}, 24);
  expect_gradients_close(
      [&] {
        Tensor s = select_dim1(a, 1);
        return sum_all(mul(s, s));
      },
      {a});
}

TEST(AutogradShape, SliceCols) {
  Tensor a = rand_input({3, 6}, 25);
  expect_gradients_close(
      [&] {
        Tensor s = slice_cols(a, 2, 3);
        return sum_all(mul(s, s));
      },
      {a});
}

TEST(AutogradShape, ConcatCols) {
  Tensor a = rand_input({2, 2}, 26), b = rand_input({2, 3}, 27);
  expect_gradients_close(
      [&] {
        Tensor c = concat_cols({a, b});
        return sum_all(mul(c, c));
      },
      {a, b});
}

TEST(AutogradShape, StackDim1) {
  Tensor a = rand_input({2, 3}, 28), b = rand_input({2, 3}, 29);
  expect_gradients_close(
      [&] {
        Tensor s = stack_dim1({a, b});
        return sum_all(mul(s, s));
      },
      {a, b});
}

TEST(AutogradShape, GatherDim1) {
  Tensor a = rand_input({3, 4, 2}, 30);
  expect_gradients_close(
      [&] {
        Tensor g = gather_dim1(a, {3, 0, 2});
        return sum_all(mul(g, g));
      },
      {a});
}

TEST(AutogradReduction, MeanAll) {
  Tensor a = rand_input({7}, 31);
  expect_gradients_close([&] { return mean_all(mul(a, a)); }, {a});
}

TEST(AutogradFused, SoftmaxLastdim) {
  Tensor a = rand_input({3, 5}, 32);
  Tensor probe = rand_input({3, 5}, 33);  // random projection to scalar
  expect_gradients_close([&] { return sum_all(mul(softmax_lastdim(a), probe)); },
                         {a});
}

TEST(AutogradFused, LayerNorm) {
  Tensor x = rand_input({4, 6}, 34);
  Tensor gamma = rand_input({6}, 35);
  Tensor beta = rand_input({6}, 36);
  Tensor probe = rand_input({4, 6}, 37);
  expect_gradients_close(
      [&] { return sum_all(mul(layer_norm(x, gamma, beta), probe)); },
      {x, gamma, beta}, 1e-2f, 8e-2f, 1e-2f);
}

TEST(AutogradFused, Embedding) {
  Tensor w = rand_input({5, 3}, 38);
  const std::vector<std::int64_t> ids = {0, 2, 2, 4};
  expect_gradients_close(
      [&] {
        Tensor e = embedding(w, ids);
        return sum_all(mul(e, e));
      },
      {w});
}

TEST(AutogradFused, CrossEntropy) {
  Tensor logits = rand_input({4, 3}, 39);
  const std::vector<std::int64_t> targets = {0, 2, 1, 2};
  expect_gradients_close([&] { return cross_entropy(logits, targets); }, {logits});
}

TEST(AutogradFused, CrossEntropyWithIgnoredRows) {
  Tensor logits = rand_input({4, 3}, 40);
  const std::vector<std::int64_t> targets = {0, -100, 1, -100};
  expect_gradients_close([&] { return cross_entropy(logits, targets); }, {logits});
}

TEST(AutogradComposite, TwoLayerMlp) {
  Tensor x = rand_input({2, 3}, 41);
  Tensor w1 = rand_input({4, 3}, 42);
  Tensor b1 = rand_input({4}, 43);
  Tensor w2 = rand_input({2, 4}, 44);
  Tensor b2 = rand_input({2}, 45);
  const std::vector<std::int64_t> targets = {0, 1};
  expect_gradients_close(
      [&] {
        Tensor h = tanh_op(linear(x, w1, b1));
        return cross_entropy(linear(h, w2, b2), targets);
      },
      {x, w1, b1, w2, b2});
}

TEST(AutogradComposite, SharedSubexpression) {
  // b used twice through different paths; gradients must sum.
  Tensor a = rand_input({3}, 46);
  expect_gradients_close(
      [&] {
        Tensor t = tanh_op(a);
        return sum_all(add(mul(t, t), mul_scalar(t, 0.5f)));
      },
      {a});
}

}  // namespace
}  // namespace cppflare::tensor
