#include "flare/provision.h"

#include <gtest/gtest.h>

#include <regex>
#include <set>

namespace cppflare::flare {
namespace {

TEST(Provisioner, DeterministicCredentials) {
  Provisioner p1("proj", 7), p2("proj", 7);
  const Credential a = p1.provision("site-1");
  const Credential b = p2.provision("site-1");
  EXPECT_EQ(a.token, b.token);
  EXPECT_EQ(a.secret, b.secret);
}

TEST(Provisioner, DifferentNamesDifferentCredentials) {
  Provisioner p("proj", 7);
  const Credential a = p.provision("site-1");
  const Credential b = p.provision("site-2");
  EXPECT_NE(a.token, b.token);
  EXPECT_NE(a.secret, b.secret);
}

TEST(Provisioner, DifferentSeedsDifferentCredentials) {
  Provisioner p1("proj", 1), p2("proj", 2);
  EXPECT_NE(p1.provision("site-1").token, p2.provision("site-1").token);
}

TEST(Provisioner, DifferentProjectsDifferentCredentials) {
  Provisioner p1("alpha", 1), p2("beta", 1);
  EXPECT_NE(p1.provision("site-1").token, p2.provision("site-1").token);
}

TEST(Provisioner, TokenIsUuidFormatted) {
  Provisioner p("proj", 3);
  const std::regex uuid(
      R"([0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12})");
  EXPECT_TRUE(std::regex_match(p.provision("site-1").token, uuid));
}

TEST(Provisioner, SecretIs32Bytes) {
  Provisioner p("proj", 3);
  EXPECT_EQ(p.provision("x").secret.size(), 32u);
}

TEST(Provisioner, ProvisionSitesIncludesServer) {
  Provisioner p("proj", 9);
  const auto registry = p.provision_sites(8);
  EXPECT_EQ(registry.size(), 9u);
  EXPECT_TRUE(registry.count("server"));
  EXPECT_TRUE(registry.count("site-1"));
  EXPECT_TRUE(registry.count("site-8"));
  EXPECT_FALSE(registry.count("site-9"));
  std::set<std::string> tokens;
  for (const auto& [name, cred] : registry) {
    EXPECT_EQ(cred.name, name);
    tokens.insert(cred.token);
  }
  EXPECT_EQ(tokens.size(), registry.size());  // all unique
}

TEST(FormatUuid, LayoutAndHex) {
  std::uint8_t bytes[16];
  for (int i = 0; i < 16; ++i) bytes[i] = static_cast<std::uint8_t>(i * 16 + i);
  const std::string uuid = format_uuid(bytes);
  EXPECT_EQ(uuid, "00112233-4455-6677-8899-aabbccddeeff");
}

}  // namespace
}  // namespace cppflare::flare
