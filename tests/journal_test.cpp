// Write-ahead round journal (DESIGN.md §15).
//
// Three layers: the typed event codec round-trips every record shape; the
// RoundJournal lifecycle (header, open round, commit barrier, compaction,
// stale-discard, torn tail, job-id mismatch) behaves as specified against
// the file alone; and a restarted FederatedServer replays a mid-round
// journal so already-resolved sites answer idempotently (kDuplicate for
// accepted, the identical typed rejection for rejected) and are never asked
// to train the round again. The crash-point death tests live in
// crash_recovery_test.cpp; this file covers the no-crash semantics.
#include "flare/journal.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/logging.h"
#include "core/wal.h"
#include "flare/aggregator.h"
#include "flare/messages.h"
#include "flare/provision.h"
#include "flare/secure_channel.h"
#include "flare/server.h"
#include "flare/simulator.h"

namespace cppflare::flare {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
    dir_ = std::filesystem::temp_directory_path() /
           ("cppflare_journal_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

nn::StateDict dict_of(std::vector<float> w) {
  nn::StateDict d;
  d.insert("w", {{static_cast<std::int64_t>(w.size())}, std::move(w)});
  return d;
}

bool bit_equal(const nn::StateDict& a, const nn::StateDict& b) {
  if (!a.congruent_with(b)) return false;
  auto ia = a.entries().begin();
  auto ib = b.entries().begin();
  for (; ia != a.entries().end(); ++ia, ++ib) {
    if (std::memcmp(ia->second.values.data(), ib->second.values.data(),
                    ia->second.values.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

Dxo sample_update(float v) {
  Dxo update(DxoKind::kWeights, dict_of({v, v * 2}));
  update.set_meta_int(Dxo::kMetaNumSamples, 10);
  return update;
}

// ---------------------------------------------------------------------------
// Event codec
// ---------------------------------------------------------------------------

TEST_F(JournalTest, EventNamesAreStable) {
  EXPECT_STREQ(journal_event_name(JournalEventType::kJobHeader), "job_header");
  EXPECT_STREQ(journal_event_name(JournalEventType::kRoundOpen), "round_open");
  EXPECT_STREQ(journal_event_name(JournalEventType::kAccepted), "accepted");
  EXPECT_STREQ(journal_event_name(JournalEventType::kRejected), "rejected");
  EXPECT_STREQ(journal_event_name(JournalEventType::kQuarantineScored),
               "quarantine_scored");
  EXPECT_STREQ(journal_event_name(JournalEventType::kEviction), "eviction");
  EXPECT_STREQ(journal_event_name(JournalEventType::kRecoveryBegin),
               "recovery_begin");
  EXPECT_STREQ(journal_event_name(JournalEventType::kUnmaskShare),
               "unmask_share");
  EXPECT_STREQ(journal_event_name(JournalEventType::kRecoveryWave),
               "recovery_wave");
  EXPECT_STREQ(journal_event_name(JournalEventType::kCommit), "commit");
}

TEST_F(JournalTest, EveryEventTypeEncodesAndDecodes) {
  JournalEvent header;
  header.type = JournalEventType::kJobHeader;
  header.job_id = "job-x";
  JournalEvent open;
  open.type = JournalEventType::kRoundOpen;
  open.round = 7;
  open.names = {"site-1", "site-2"};
  JournalEvent accepted;
  accepted.type = JournalEventType::kAccepted;
  accepted.site = "site-2";
  accepted.payload = sample_update(1.5f);
  JournalEvent rejected;
  rejected.type = JournalEventType::kRejected;
  rejected.site = "site-3";
  rejected.reason = 2;
  rejected.detail = "non-finite values";
  JournalEvent scored;
  scored.type = JournalEventType::kQuarantineScored;
  scored.site = "site-4";
  scored.reason = 6;
  scored.detail = "quarantined; scored only";
  scored.norm = 3.25;
  JournalEvent evicted;
  evicted.type = JournalEventType::kEviction;
  evicted.site = "site-5";
  JournalEvent recovery;
  recovery.type = JournalEventType::kRecoveryBegin;
  recovery.round = 4;
  recovery.names = {"site-8"};
  recovery.deadline_fired = true;
  JournalEvent share;
  share.type = JournalEventType::kUnmaskShare;
  share.site = "site-1";
  share.payload = sample_update(-0.75f);
  JournalEvent wave;
  wave.type = JournalEventType::kRecoveryWave;
  wave.wave = 2;
  wave.names = {"site-6", "site-7"};
  JournalEvent commit;
  commit.type = JournalEventType::kCommit;
  commit.round = 9;

  for (const JournalEvent& ev :
       {header, open, accepted, rejected, scored, evicted, recovery, share,
        wave, commit}) {
    const JournalEvent back = JournalEvent::decode(ev.encode());
    EXPECT_EQ(back.type, ev.type) << journal_event_name(ev.type);
    EXPECT_EQ(back.job_id, ev.job_id);
    EXPECT_EQ(back.round, ev.round);
    EXPECT_EQ(back.site, ev.site);
    EXPECT_EQ(back.names, ev.names);
    EXPECT_EQ(back.reason, ev.reason);
    EXPECT_EQ(back.detail, ev.detail);
    EXPECT_DOUBLE_EQ(back.norm, ev.norm);
    EXPECT_EQ(back.deadline_fired, ev.deadline_fired);
    EXPECT_EQ(back.wave, ev.wave);
    ASSERT_EQ(back.payload.has_value(), ev.payload.has_value());
    if (ev.payload) {
      EXPECT_EQ(back.payload->kind(), ev.payload->kind());
      EXPECT_TRUE(bit_equal(back.payload->data(), ev.payload->data()));
      EXPECT_EQ(back.payload->meta_int(Dxo::kMetaNumSamples),
                ev.payload->meta_int(Dxo::kMetaNumSamples));
    }
  }
}

TEST_F(JournalTest, UnknownEventTypeIsATypedDecodeError) {
  std::vector<std::uint8_t> bytes = JournalEvent{}.encode();
  bytes[0] = 0xee;
  EXPECT_THROW((void)JournalEvent::decode(bytes), SerializationError);
}

// ---------------------------------------------------------------------------
// RoundJournal lifecycle against the file
// ---------------------------------------------------------------------------

TEST_F(JournalTest, FreshJournalWritesHeaderAndHoldsNoRound) {
  const std::string file = path("fresh.journal");
  RoundJournal journal(file, core::WalSyncPolicy::kOff);
  const JournalReplay replay = journal.open("job-a");
  EXPECT_EQ(replay.open_round, -1);
  EXPECT_EQ(replay.committed_round, -1);
  EXPECT_TRUE(replay.events.empty());
  const auto events = RoundJournal::read(file);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, JournalEventType::kJobHeader);
  EXPECT_EQ(events[0].job_id, "job-a");
}

TEST_F(JournalTest, ReopenReturnsTheOpenRoundsEventsInOrder) {
  const std::string file = path("mid.journal");
  {
    RoundJournal journal(file, core::WalSyncPolicy::kEveryRound);
    (void)journal.open("job-b");
    journal.round_open(3, {"site-1", "site-2", "site-3"});
    journal.accepted("site-1", sample_update(1.0f));
    journal.rejected("site-2", 2, "non-finite");
    journal.evicted("site-3");
    journal.sync();
  }
  RoundJournal journal(file, core::WalSyncPolicy::kEveryRound);
  const JournalReplay replay = journal.open("job-b");
  EXPECT_EQ(replay.open_round, 3);
  EXPECT_EQ(replay.committed_round, -1);
  EXPECT_EQ(replay.torn_bytes, 0u);
  ASSERT_EQ(replay.events.size(), 4u);
  EXPECT_EQ(replay.events[0].type, JournalEventType::kRoundOpen);
  EXPECT_EQ(replay.events[0].names,
            (std::vector<std::string>{"site-1", "site-2", "site-3"}));
  EXPECT_EQ(replay.events[1].type, JournalEventType::kAccepted);
  ASSERT_TRUE(replay.events[1].payload.has_value());
  EXPECT_TRUE(bit_equal(replay.events[1].payload->data(), dict_of({1.0f, 2.0f})));
  EXPECT_EQ(replay.events[2].type, JournalEventType::kRejected);
  EXPECT_EQ(replay.events[2].detail, "non-finite");
  EXPECT_EQ(replay.events[3].type, JournalEventType::kEviction);
}

TEST_F(JournalTest, CommitCompactsBackToHeaderAlone) {
  const std::string file = path("commit.journal");
  RoundJournal journal(file, core::WalSyncPolicy::kEveryRound);
  (void)journal.open("job-c");
  journal.round_open(0, {"site-1"});
  journal.accepted("site-1", sample_update(2.0f));
  journal.commit(0);
  // The commit barrier compacted the log: nothing but the header remains on
  // disk, and a reopen finds no mid-round state.
  const auto events = RoundJournal::read(file);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, JournalEventType::kJobHeader);
  RoundJournal reopened(file, core::WalSyncPolicy::kEveryRound);
  const JournalReplay replay = reopened.open("job-c");
  EXPECT_EQ(replay.open_round, -1);
  // The next round opens cleanly on the compacted log.
  reopened.round_open(1, {"site-1"});
  const JournalReplay again =
      RoundJournal(file, core::WalSyncPolicy::kOff).open("job-c");
  EXPECT_EQ(again.open_round, 1);
}

TEST_F(JournalTest, RecoveryEventsSurviveReopen) {
  const std::string file = path("recovery.journal");
  {
    RoundJournal journal(file, core::WalSyncPolicy::kOff);
    (void)journal.open("job-r");
    journal.round_open(2, {"site-1", "site-2", "site-3"});
    journal.accepted("site-1", sample_update(1.0f));
    journal.accepted("site-2", sample_update(2.0f));
    journal.recovery_begin(2, {"site-3"}, true);
    journal.unmask_share("site-1", sample_update(0.25f));
    journal.recovery_wave(0, {"site-2"});
  }
  const JournalReplay replay =
      RoundJournal(file, core::WalSyncPolicy::kOff).open("job-r");
  EXPECT_EQ(replay.open_round, 2);
  ASSERT_EQ(replay.events.size(), 6u);
  EXPECT_EQ(replay.events[3].type, JournalEventType::kRecoveryBegin);
  EXPECT_EQ(replay.events[3].names, (std::vector<std::string>{"site-3"}));
  EXPECT_TRUE(replay.events[3].deadline_fired);
  EXPECT_EQ(replay.events[4].type, JournalEventType::kUnmaskShare);
  EXPECT_EQ(replay.events[5].type, JournalEventType::kRecoveryWave);
  EXPECT_EQ(replay.events[5].names, (std::vector<std::string>{"site-2"}));
}

TEST_F(JournalTest, DiscardDropsRoundStateButKeepsHeader) {
  const std::string file = path("discard.journal");
  RoundJournal journal(file, core::WalSyncPolicy::kOff);
  (void)journal.open("job-d");
  journal.round_open(5, {"site-1"});
  journal.discard();
  const auto events = RoundJournal::read(file);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, JournalEventType::kJobHeader);
  EXPECT_EQ(events[0].job_id, "job-d");
}

TEST_F(JournalTest, DifferentJobIdIsATypedConfigError) {
  const std::string file = path("foreign.journal");
  { (void)RoundJournal(file, core::WalSyncPolicy::kOff).open("job-theirs"); }
  RoundJournal journal(file, core::WalSyncPolicy::kOff);
  try {
    (void)journal.open("job-ours");
    FAIL() << "a foreign journal must not open";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("job-theirs"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(file), std::string::npos);
  }
}

TEST_F(JournalTest, TornTailOnReopenKeepsThePrefix) {
  const std::string file = path("torn.journal");
  {
    RoundJournal journal(file, core::WalSyncPolicy::kOff);
    (void)journal.open("job-t");
    journal.round_open(1, {"site-1", "site-2"});
    journal.accepted("site-1", sample_update(1.0f));
    journal.accepted("site-2", sample_update(2.0f));
  }
  // Chop into the final frame: the crash-shaped failure. Replay keeps the
  // intact prefix and reports what it dropped.
  std::filesystem::resize_file(file, std::filesystem::file_size(file) - 3);
  const JournalReplay replay =
      RoundJournal(file, core::WalSyncPolicy::kOff).open("job-t");
  EXPECT_EQ(replay.open_round, 1);
  EXPECT_GT(replay.torn_bytes, 0u);  // the whole partial frame is dropped
  ASSERT_EQ(replay.events.size(), 2u);
  EXPECT_EQ(replay.events[1].site, "site-1");
}

TEST_F(JournalTest, BitRotSurfacesAsWalCorruption) {
  const std::string file = path("rot.journal");
  {
    RoundJournal journal(file, core::WalSyncPolicy::kOff);
    (void)journal.open("job-z");
    journal.round_open(0, {"site-1"});
    journal.accepted("site-1", sample_update(1.0f));
  }
  std::vector<char> bytes;
  {
    std::ifstream in(file, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  bytes[10] = static_cast<char>(bytes[10] ^ 0x10);  // inside the header frame
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  RoundJournal journal(file, core::WalSyncPolicy::kOff);
  EXPECT_THROW((void)journal.open("job-z"), core::WalCorruptionError);
}

// ---------------------------------------------------------------------------
// Mid-round server restart, one sealed frame at a time
// ---------------------------------------------------------------------------

/// Wire-level driver that can kill and restart its server against the same
/// persistor + journal files, exactly as a crashed coordinator would come
/// back: fresh process state, same durable state.
class RestartableFederation {
 public:
  RestartableFederation(ServerConfig config, std::int64_t num_sites,
                        std::string persist_path, std::string journal_path)
      : config_(std::move(config)),
        registry_(Provisioner(config_.job_id, 17).provision_sites(num_sites)),
        persist_path_(std::move(persist_path)),
        journal_path_(std::move(journal_path)) {
    boot();
  }

  /// Tears the server down (losing all in-memory round state) and builds a
  /// successor from the checkpoint + journal files alone.
  void restart() {
    server_.reset();
    boot();
  }

  FederatedServer& server() { return *server_; }

  std::vector<std::uint8_t> call(const std::string& site,
                                 const std::vector<std::uint8_t>& frame) {
    const Credential& cred = registry_.at(site);
    const auto response =
        dispatcher_(seal(cred.name, cred.secret, seq_[site].next(), frame));
    return open(response, cred.secret).payload;
  }

  void register_site(const std::string& site) {
    const RegisterAck ack = decode_register_ack(
        call(site, pack(RegisterRequest{site, registry_.at(site).token})));
    ASSERT_TRUE(ack.accepted);
    sessions_[site] = ack.session_id;
  }

  TaskMessage poll(const std::string& site) {
    return decode_task(call(site, pack(GetTaskRequest{sessions_.at(site)})));
  }

  SubmitAck submit(const std::string& site, std::int64_t round,
                   std::vector<float> weights) {
    SubmitUpdateRequest req;
    req.session_id = sessions_.at(site);
    req.round = round;
    req.payload = Dxo(DxoKind::kWeights, dict_of(std::move(weights)));
    req.payload.set_meta_int(Dxo::kMetaNumSamples, 10);
    return decode_submit_ack(call(site, pack(req)));
  }

 private:
  void boot() {
    auto persistor = std::make_shared<ModelPersistor>(persist_path_);
    auto journal = std::make_shared<RoundJournal>(
        journal_path_, core::WalSyncPolicy::kEveryRound);
    server_ = std::make_unique<FederatedServer>(
        config_, registry_, dict_of({0.0f, 0.0f}),
        std::make_unique<FedAvgAggregator>(false), persistor,
        persistor->load(), std::move(journal));
    dispatcher_ = server_->dispatcher();
    sessions_.clear();  // sessions are process state; they died with it
  }

  ServerConfig config_;
  std::map<std::string, Credential> registry_;
  std::string persist_path_;
  std::string journal_path_;
  std::unique_ptr<FederatedServer> server_;
  Dispatcher dispatcher_;
  std::map<std::string, SequenceSource> seq_;
  std::map<std::string, std::string> sessions_;
};

TEST_F(JournalTest, RestartedServerResumesMidRoundWithIdempotentAcks) {
  ServerConfig config;
  config.job_id = "restart-job";
  config.num_rounds = 1;
  config.expected_clients = 3;
  config.min_clients = 2;
  RestartableFederation fed(config, 3, path("model.bin"),
                            path("model.bin.journal"));
  for (const std::string site : {"site-1", "site-2", "site-3"}) {
    fed.register_site(site);
  }
  EXPECT_TRUE(fed.submit("site-1", 0, {2.0f, 4.0f}).accepted);
  const SubmitAck nan_ack =
      fed.submit("site-2", 0, {std::nanf(""), 1.0f});
  EXPECT_FALSE(nan_ack.accepted);
  EXPECT_EQ(nan_ack.reason, RejectReason::kNonFinite);

  // Coordinator dies mid-round with one accept and one rejection buffered.
  fed.restart();
  for (const std::string site : {"site-1", "site-2", "site-3"}) {
    fed.register_site(site);
  }

  // The successor resumed *within* round 0: resolved sites are answered
  // from replayed state — site-1's resend maps to the duplicate-contribution
  // success, site-2's resend gets the identical typed rejection — and
  // neither is handed the train task again.
  EXPECT_EQ(fed.poll("site-1").task, TaskKind::kNone);
  EXPECT_EQ(fed.poll("site-2").task, TaskKind::kNone);
  EXPECT_EQ(fed.poll("site-3").task, TaskKind::kTrain);
  const SubmitAck dup = fed.submit("site-1", 0, {2.0f, 4.0f});
  EXPECT_FALSE(dup.accepted);
  EXPECT_EQ(dup.reason, RejectReason::kDuplicate);
  EXPECT_EQ(dup.message, kDuplicateContribution);
  const SubmitAck again = fed.submit("site-2", 0, {std::nanf(""), 1.0f});
  EXPECT_FALSE(again.accepted);
  EXPECT_EQ(again.reason, RejectReason::kNonFinite);
  EXPECT_EQ(again.message, nan_ack.message);

  // site-3's contribution completes the round: the published mean is over
  // the pre-crash site-1 update and the post-crash site-3 one.
  EXPECT_TRUE(fed.submit("site-3", 0, {6.0f, 12.0f}).accepted);
  ASSERT_TRUE(fed.server().wait_until_finished(10000));
  EXPECT_TRUE(bit_equal(fed.server().global_model(), dict_of({4.0f, 8.0f})));
  const auto history = fed.server().history();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].num_contributions, 2);
  EXPECT_EQ(history[0].rejected_updates, 1);
  // The committed round compacted the journal back to its header.
  const auto events = RoundJournal::read(path("model.bin.journal"));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, JournalEventType::kJobHeader);
}

TEST_F(JournalTest, DoubleRestartReplaysTheSameJournalAgain) {
  // The journal is only compacted at the commit barrier — a server that
  // replays, then dies again before the round closes, leaves the journal
  // intact for the next incarnation (crash-during-replay is exercised with
  // a real SIGKILL in crash_recovery_test.cpp).
  ServerConfig config;
  config.job_id = "double-restart";
  config.num_rounds = 1;
  config.expected_clients = 2;
  config.min_clients = 2;
  RestartableFederation fed(config, 2, path("model.bin"),
                            path("model.bin.journal"));
  for (const std::string site : {"site-1", "site-2"}) fed.register_site(site);
  EXPECT_TRUE(fed.submit("site-1", 0, {1.0f, 3.0f}).accepted);

  fed.restart();  // replays {accept site-1}, dies before the round closes
  fed.restart();  // replays the very same journal again
  for (const std::string site : {"site-1", "site-2"}) fed.register_site(site);
  EXPECT_EQ(fed.submit("site-1", 0, {1.0f, 3.0f}).reason,
            RejectReason::kDuplicate);
  EXPECT_TRUE(fed.submit("site-2", 0, {3.0f, 5.0f}).accepted);
  ASSERT_TRUE(fed.server().wait_until_finished(10000));
  EXPECT_TRUE(bit_equal(fed.server().global_model(), dict_of({2.0f, 4.0f})));
}

// ---------------------------------------------------------------------------
// Simulator-level reconciliation edges (checkpoint vs journal)
// ---------------------------------------------------------------------------

class ConstLearner : public Learner {
 public:
  ConstLearner(std::string site, float value)
      : site_(std::move(site)), value_(value) {}
  Dxo train(const Dxo& global, const FLContext&) override {
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v = value_;
    }
    Dxo update(DxoKind::kWeights, updated);
    update.set_meta_int(Dxo::kMetaNumSamples, 10);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float value_;
};

SimulatorRunner make_runner(const SimulatorConfig& config) {
  return SimulatorRunner(
      config, dict_of({0.0f, 0.0f, 0.0f, 0.0f}),
      std::make_unique<FedAvgAggregator>(false),
      [](std::int64_t i, const std::string& name) {
        return std::make_shared<ConstLearner>(name,
                                              0.5f * static_cast<float>(i));
      });
}

SimulatorConfig sim_config(const std::string& persist_path) {
  SimulatorConfig config;
  config.job_id = "journal-sim";
  config.num_clients = 4;
  config.num_rounds = 3;
  config.persist_path = persist_path;
  return config;
}

TEST_F(JournalTest, JournaledRunMatchesJournalFreeRunBitForBit) {
  SimulatorConfig plain = sim_config(path("plain.bin"));
  const SimulationResult reference = make_runner(plain).run();
  ASSERT_FALSE(reference.aborted);

  SimulatorConfig journaled = sim_config(path("journaled.bin"));
  journaled.journal = true;
  const SimulationResult durable = make_runner(journaled).run();
  ASSERT_FALSE(durable.aborted);
  EXPECT_TRUE(bit_equal(reference.final_model, durable.final_model));
  // Every round committed: the derived journal is compacted to its header.
  const auto events = RoundJournal::read(path("journaled.bin.journal"));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, JournalEventType::kJobHeader);
  EXPECT_EQ(events[0].job_id, "journal-sim");
}

TEST_F(JournalTest, StaleJournalIsDiscardedOnResume) {
  // Complete a run, then plant a journal whose open round the checkpoint
  // already owns (the crash-after-checkpoint-before-commit window). The
  // resumed server must discard it with a warning, not replay it.
  SimulatorConfig config = sim_config(path("stale.bin"));
  const SimulationResult done = make_runner(config).run();
  ASSERT_FALSE(done.aborted);
  {
    RoundJournal journal(path("stale.bin.journal"),
                         core::WalSyncPolicy::kOff);
    (void)journal.open("journal-sim");
    journal.round_open(2, {"site-1", "site-2", "site-3", "site-4"});
    journal.accepted("site-1", sample_update(9.0f));
  }
  config.resume = true;
  config.journal = true;
  const SimulationResult resumed = make_runner(config).run();
  ASSERT_FALSE(resumed.aborted);
  EXPECT_EQ(resumed.resumed_from_round, 2);
  EXPECT_EQ(resumed.history.size(), 3u);
  EXPECT_TRUE(bit_equal(done.final_model, resumed.final_model));
  const auto events = RoundJournal::read(path("stale.bin.journal"));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, JournalEventType::kJobHeader);
}

TEST_F(JournalTest, JournalWithoutItsCheckpointIsDiscarded) {
  // The journal names round 5 but the checkpoint is gone (fresh start at
  // round 0): the mid-round state is unusable and must be dropped, and the
  // run must complete exactly like a journal-free fresh run.
  {
    RoundJournal journal(path("orphan.bin.journal"),
                         core::WalSyncPolicy::kOff);
    (void)journal.open("journal-sim");
    journal.round_open(5, {"site-1", "site-2", "site-3", "site-4"});
    journal.accepted("site-2", sample_update(7.0f));
  }
  SimulatorConfig config = sim_config(path("orphan.bin"));
  config.journal = true;
  const SimulationResult result = make_runner(config).run();
  ASSERT_FALSE(result.aborted);
  EXPECT_EQ(result.history.size(), 3u);

  const SimulationResult reference = make_runner(sim_config(path("ref.bin"))).run();
  EXPECT_TRUE(bit_equal(result.final_model, reference.final_model));
}

TEST_F(JournalTest, ForeignJobJournalRejectsServerConstruction) {
  {
    RoundJournal journal(path("foreign.bin.journal"),
                         core::WalSyncPolicy::kOff);
    (void)journal.open("somebody-elses-job");
  }
  SimulatorConfig config = sim_config(path("foreign.bin"));
  config.journal = true;
  EXPECT_THROW(make_runner(config), ConfigError);
}

TEST_F(JournalTest, JournalWithNoDerivablePathRejectsConfig) {
  SimulatorConfig config;
  config.job_id = "journal-sim";
  config.journal = true;  // neither journal_path nor persist_path
  EXPECT_THROW(make_runner(config), ConfigError);
}

}  // namespace
}  // namespace cppflare::flare
