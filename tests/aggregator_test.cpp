#include "flare/aggregator.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "core/logging.h"

namespace cppflare::flare {
namespace {

nn::StateDict dict_of(std::vector<float> w) {
  nn::StateDict d;
  d.insert("w", {{static_cast<std::int64_t>(w.size())}, std::move(w)});
  return d;
}

Dxo weights_dxo(std::vector<float> w, std::int64_t samples) {
  Dxo dxo(DxoKind::kWeights, dict_of(std::move(w)));
  dxo.set_meta_int(Dxo::kMetaNumSamples, samples);
  return dxo;
}

class AggregatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
  }
  void TearDown() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }
};

TEST_F(AggregatorTest, WeightedAverageBySamples) {
  FedAvgAggregator agg(true);
  agg.reset(dict_of({0, 0}), 0);
  ASSERT_TRUE(agg.accept("site-1", weights_dxo({1, 1}, 300)));
  ASSERT_TRUE(agg.accept("site-2", weights_dxo({4, 0}, 100)));
  const nn::StateDict out = agg.aggregate();
  // (300*1 + 100*4) / 400 = 1.75 ; (300*1 + 100*0) / 400 = 0.75
  EXPECT_NEAR(out.at("w").values[0], 1.75f, 1e-5f);
  EXPECT_NEAR(out.at("w").values[1], 0.75f, 1e-5f);
}

TEST_F(AggregatorTest, UniformAverageIgnoresSamples) {
  FedAvgAggregator agg(false);
  agg.reset(dict_of({0, 0}), 0);
  agg.accept("site-1", weights_dxo({1, 1}, 300));
  agg.accept("site-2", weights_dxo({4, 0}, 100));
  const nn::StateDict out = agg.aggregate();
  EXPECT_NEAR(out.at("w").values[0], 2.5f, 1e-5f);
  EXPECT_NEAR(out.at("w").values[1], 0.5f, 1e-5f);
}

TEST_F(AggregatorTest, WeightDiffAddsToGlobal) {
  FedAvgAggregator agg(true);
  agg.reset(dict_of({10, 20}), 2);
  Dxo d1(DxoKind::kWeightDiff, dict_of({1, -1}));
  d1.set_meta_int(Dxo::kMetaNumSamples, 1);
  Dxo d2(DxoKind::kWeightDiff, dict_of({3, 1}));
  d2.set_meta_int(Dxo::kMetaNumSamples, 1);
  agg.accept("a", d1);
  agg.accept("b", d2);
  const nn::StateDict out = agg.aggregate();
  EXPECT_NEAR(out.at("w").values[0], 12.0f, 1e-5f);
  EXPECT_NEAR(out.at("w").values[1], 20.0f, 1e-5f);
}

TEST_F(AggregatorTest, RejectsDuplicateSite) {
  FedAvgAggregator agg(true);
  agg.reset(dict_of({0}), 0);
  EXPECT_TRUE(agg.accept("a", weights_dxo({1}, 1)));
  EXPECT_FALSE(agg.accept("a", weights_dxo({2}, 1)));
  EXPECT_EQ(agg.accepted_count(), 1);
}

TEST_F(AggregatorTest, RejectsMixedKindsWithinRound) {
  FedAvgAggregator agg(true);
  agg.reset(dict_of({0}), 0);
  EXPECT_TRUE(agg.accept("a", weights_dxo({1}, 1)));
  Dxo diff(DxoKind::kWeightDiff, dict_of({1}));
  diff.set_meta_int(Dxo::kMetaNumSamples, 1);
  EXPECT_FALSE(agg.accept("b", diff));
}

TEST_F(AggregatorTest, RejectsIncongruentModel) {
  FedAvgAggregator agg(true);
  agg.reset(dict_of({0, 0}), 0);
  EXPECT_FALSE(agg.accept("a", weights_dxo({1}, 1)));  // wrong size
  nn::StateDict renamed;
  renamed.insert("other", {{2}, {1, 1}});
  Dxo bad(DxoKind::kWeights, renamed);
  bad.set_meta_int(Dxo::kMetaNumSamples, 1);
  EXPECT_FALSE(agg.accept("b", bad));
}

TEST_F(AggregatorTest, RejectsMetricsOnlyAndBadWeights) {
  FedAvgAggregator agg(true);
  agg.reset(dict_of({0}), 0);
  Dxo metrics;
  EXPECT_FALSE(agg.accept("a", metrics));
  Dxo zero_samples = weights_dxo({1}, 0);
  EXPECT_FALSE(agg.accept("b", zero_samples));
}

TEST_F(AggregatorTest, AggregateWithoutContributionsThrows) {
  FedAvgAggregator agg(true);
  agg.reset(dict_of({0}), 0);
  EXPECT_THROW(agg.aggregate(), Error);
}

TEST_F(AggregatorTest, MetricsAreSampleWeighted) {
  FedAvgAggregator agg(true);
  agg.reset(dict_of({0}), 5);
  Dxo a = weights_dxo({0}, 300);
  a.set_meta_double(Dxo::kMetaTrainLoss, 1.0);
  a.set_meta_double(Dxo::kMetaValidAcc, 0.9);
  a.set_meta_double(Dxo::kMetaValidLoss, 0.5);
  Dxo b = weights_dxo({0}, 100);
  b.set_meta_double(Dxo::kMetaTrainLoss, 2.0);
  b.set_meta_double(Dxo::kMetaValidAcc, 0.5);
  b.set_meta_double(Dxo::kMetaValidLoss, 1.5);
  agg.accept("a", a);
  agg.accept("b", b);
  agg.aggregate();
  const RoundMetrics m = agg.metrics();
  EXPECT_EQ(m.round, 5);
  EXPECT_EQ(m.num_contributions, 2);
  EXPECT_EQ(m.total_samples, 400);
  EXPECT_NEAR(m.train_loss, (300 * 1.0 + 100 * 2.0) / 400, 1e-9);
  EXPECT_NEAR(m.valid_acc, (300 * 0.9 + 100 * 0.5) / 400, 1e-9);
  EXPECT_NEAR(m.valid_loss, (300 * 0.5 + 100 * 1.5) / 400, 1e-9);
}

TEST_F(AggregatorTest, ResetClearsState) {
  FedAvgAggregator agg(true);
  agg.reset(dict_of({0}), 0);
  agg.accept("a", weights_dxo({2}, 1));
  agg.aggregate();
  agg.reset(dict_of({0}), 1);
  EXPECT_EQ(agg.accepted_count(), 0);
  // The same site may contribute again in the new round.
  EXPECT_TRUE(agg.accept("a", weights_dxo({4}, 1)));
  EXPECT_NEAR(agg.aggregate().at("w").values[0], 4.0f, 1e-6f);
}

TEST_F(AggregatorTest, NameReflectsMode) {
  EXPECT_EQ(FedAvgAggregator(true).name(), "FedAvg(weighted)");
  EXPECT_EQ(FedAvgAggregator(false).name(), "FedAvg(uniform)");
}

TEST_F(AggregatorTest, SingleContributorPassthrough) {
  FedAvgAggregator agg(true);
  agg.reset(dict_of({7, -3}), 0);
  agg.accept("solo", weights_dxo({1.5f, 2.5f}, 123));
  const nn::StateDict out = agg.aggregate();
  EXPECT_FLOAT_EQ(out.at("w").values[0], 1.5f);
  EXPECT_FLOAT_EQ(out.at("w").values[1], 2.5f);
}

}  // namespace
}  // namespace cppflare::flare
