#include "tensor/kernels.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.h"

namespace cppflare::tensor {
namespace {

// Reference triple-loop implementations.
void ref_nn(const std::vector<float>& a, const std::vector<float>& b,
            std::vector<float>& c, int m, int k, int n) {
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j)
      for (int kk = 0; kk < k; ++kk) c[i * n + j] += a[i * k + kk] * b[kk * n + j];
}

void ref_nt(const std::vector<float>& a, const std::vector<float>& b,
            std::vector<float>& c, int m, int k, int n) {
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j)
      for (int kk = 0; kk < k; ++kk) c[i * n + j] += a[i * k + kk] * b[j * k + kk];
}

void ref_tn(const std::vector<float>& a, const std::vector<float>& b,
            std::vector<float>& c, int m, int k, int n) {
  for (int kk = 0; kk < k; ++kk)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < m; ++i) c[kk * n + j] += a[i * k + kk] * b[i * n + j];
}

struct GemmCase {
  int m, k, n;
};

class GemmParamTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParamTest, NnMatchesReference) {
  const auto [m, k, n] = GetParam();
  core::Rng rng(m * 10007 + k * 101 + n);
  std::vector<float> a(m * k), b(k * n), c(m * n, 0.0f), ref(m * n, 0.0f);
  for (auto& x : a) x = static_cast<float>(rng.normal());
  for (auto& x : b) x = static_cast<float>(rng.normal());
  gemm_nn(a.data(), b.data(), c.data(), m, k, n);
  ref_nn(a, b, ref, m, k, n);
  for (int i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f) << i;
}

TEST_P(GemmParamTest, NtMatchesReference) {
  const auto [m, k, n] = GetParam();
  core::Rng rng(m * 7 + k * 11 + n * 13);
  std::vector<float> a(m * k), b(n * k), c(m * n, 0.0f), ref(m * n, 0.0f);
  for (auto& x : a) x = static_cast<float>(rng.normal());
  for (auto& x : b) x = static_cast<float>(rng.normal());
  gemm_nt(a.data(), b.data(), c.data(), m, k, n);
  ref_nt(a, b, ref, m, k, n);
  for (int i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f) << i;
}

TEST_P(GemmParamTest, TnMatchesReference) {
  const auto [m, k, n] = GetParam();
  core::Rng rng(m * 3 + k * 5 + n * 17);
  std::vector<float> a(m * k), b(m * n), c(k * n, 0.0f), ref(k * n, 0.0f);
  for (auto& x : a) x = static_cast<float>(rng.normal());
  for (auto& x : b) x = static_cast<float>(rng.normal());
  gemm_tn(a.data(), b.data(), c.data(), m, k, n);
  ref_tn(a, b, ref, m, k, n);
  for (int i = 0; i < k * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParamTest,
    ::testing::Values(GemmCase{1, 1, 1}, GemmCase{2, 3, 4}, GemmCase{5, 7, 3},
                      GemmCase{8, 8, 8}, GemmCase{16, 32, 16}, GemmCase{3, 1, 9},
                      GemmCase{1, 64, 1}, GemmCase{33, 17, 5},
                      // n not divisible by 4 exercises the gemm_nt tail.
                      GemmCase{4, 16, 6}, GemmCase{4, 16, 7}),
    [](const ::testing::TestParamInfo<GemmCase>& info) {
      return std::to_string(info.param.m) + "x" + std::to_string(info.param.k) +
             "x" + std::to_string(info.param.n);
    });

TEST(GemmAccumulate, AddsToExistingValues) {
  std::vector<float> a = {1, 0, 0, 1};  // 2x2 identity
  std::vector<float> b = {5, 6, 7, 8};
  std::vector<float> c = {100, 100, 100, 100};
  gemm_nn(a.data(), b.data(), c.data(), 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 105);
  EXPECT_FLOAT_EQ(c[1], 106);
  EXPECT_FLOAT_EQ(c[2], 107);
  EXPECT_FLOAT_EQ(c[3], 108);
}

}  // namespace
}  // namespace cppflare::tensor
