// Adversarial-site defense suite (DESIGN.md §10).
//
// Exercises the whole defense pipeline end to end: the PoisonFilter attack
// catalogue, the server-side UpdateValidator (typed rejection reasons,
// round-close norm-outlier revocation), cross-round quarantine/parole, and
// quarantine survival across crash-restart resume. The headline property
// mirrors faults_test: with the validator and quarantine on, an 8-site
// federation carrying one poisoning site converges bit-for-bit identical to
// a clean 7-site run, on both the in-proc and TCP transports.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <future>
#include <thread>
#include <unistd.h>

#include "core/logging.h"
#include "flare/poison.h"
#include "flare/provision.h"
#include "flare/robust_aggregator.h"
#include "flare/secure_channel.h"
#include "flare/server.h"
#include "flare/simulator.h"
#include "flare/validator.h"

namespace cppflare::flare {
namespace {

class PoisonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
    dir_ = std::filesystem::temp_directory_path() /
           ("cppflare_poison_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

nn::StateDict dict_of(std::vector<float> w) {
  nn::StateDict d;
  d.insert("w", {{static_cast<std::int64_t>(w.size())}, std::move(w)});
  return d;
}

/// Four weights at 5.0: far enough from every site's nudge target that both
/// the scale and the sign-flip attack produce deviation norms the robust
/// z-score separates cleanly from honest heterogeneity (hand-checked in the
/// outlier tests below).
nn::StateDict tiny_model() { return dict_of({5.0f, 5.0f, 5.0f, 5.0f}); }

bool bit_equal(const nn::StateDict& a, const nn::StateDict& b) {
  if (!a.congruent_with(b)) return false;
  auto ia = a.entries().begin();
  auto ib = b.entries().begin();
  for (; ia != a.entries().end(); ++ia, ++ib) {
    if (std::memcmp(ia->second.values.data(), ib->second.values.data(),
                    ia->second.values.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

bool any_non_finite(const nn::StateDict& d) {
  for (const auto& [name, blob] : d.entries()) {
    for (const float v : blob.values) {
      if (!std::isfinite(v)) return true;
    }
  }
  return false;
}

/// Deterministic learner (same as faults_test): nudges every weight halfway
/// toward a per-site target, so any two runs executing the same honest
/// rounds agree bit-for-bit.
class NudgeLearner : public Learner {
 public:
  NudgeLearner(std::string site, float target, std::int64_t train_ms = 0)
      : site_(std::move(site)), target_(target), train_ms_(train_ms) {}

  Dxo train(const Dxo& global, const FLContext&) override {
    core::Backoff::sleep_ms(train_ms_);
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v += 0.5f * (target_ - v);
    }
    Dxo update(DxoKind::kWeights, updated);
    update.set_meta_int(Dxo::kMetaNumSamples, 10);
    update.set_meta_double(Dxo::kMetaTrainLoss, 1.0);
    update.set_meta_double(Dxo::kMetaValidAcc, 0.5);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float target_;
  std::int64_t train_ms_;
};

SimulatorRunner make_runner(SimulatorConfig config, std::int64_t train_ms = 0) {
  return SimulatorRunner(
      config, tiny_model(), std::make_unique<FedAvgAggregator>(true),
      [train_ms](std::int64_t i, const std::string& name) {
        return std::make_shared<NudgeLearner>(name, static_cast<float>(i),
                                              train_ms);
      });
}

/// The defended configuration used by the acceptance tests: full screening,
/// norm-outlier pass at 6 robust sigmas, quarantine after 2 strikes.
void arm_defenses(SimulatorConfig& config) {
  config.validator.norm_zscore_threshold = 6.0;
  config.validator.min_updates_for_outlier = 4;
  config.validator.max_sample_count = 50;
  config.reputation.quarantine_after = 2;
  config.reputation.parole_after = 2;
}

// ---------------------------------------------------------------------------
// PoisonFilter unit behavior
// ---------------------------------------------------------------------------

FLContext ctx_at(std::int64_t round, const std::string& site = "site-x") {
  FLContext ctx;
  ctx.site_name = site;
  ctx.current_round = round;
  ctx.total_rounds = 10;
  return ctx;
}

Dxo honest_update(std::vector<float> w, std::int64_t round) {
  Dxo dxo(DxoKind::kWeights, dict_of(std::move(w)));
  dxo.set_meta_int(Dxo::kMetaNumSamples, 10);
  dxo.set_meta_int(Dxo::kMetaRound, round);
  return dxo;
}

TEST_F(PoisonTest, DefaultPlanIsInertAndMetricsPassThrough) {
  PoisonFilter filter{PoisonPlan{}};
  Dxo update = honest_update({1.0f, 2.0f}, 0);
  filter.process(update, ctx_at(0));
  EXPECT_EQ(update.data().at("w").values, (std::vector<float>{1.0f, 2.0f}));
  EXPECT_EQ(filter.stats().poisoned_updates, 0);

  PoisonPlan plan;
  plan.scale_factor = -10.0;
  PoisonFilter armed(plan);
  Dxo metrics;  // kMetrics: no weights to poison
  metrics.set_meta_double(Dxo::kMetaValidAcc, 0.9);
  armed.process(metrics, ctx_at(0));
  EXPECT_EQ(metrics.meta_double(Dxo::kMetaValidAcc, 0.0), 0.9);
  EXPECT_EQ(armed.stats().poisoned_updates, 0);
}

TEST_F(PoisonTest, ScaleAndSignFlipMutateEveryValue) {
  PoisonPlan plan;
  plan.scale_factor = -10.0;
  PoisonFilter scaler(plan);
  Dxo update = honest_update({1.0f, -2.0f}, 0);
  scaler.process(update, ctx_at(0));
  EXPECT_EQ(update.data().at("w").values, (std::vector<float>{-10.0f, 20.0f}));
  EXPECT_EQ(scaler.stats().scaled, 1);

  PoisonPlan flip;
  flip.sign_flip = true;
  PoisonFilter flipper(flip);
  Dxo update2 = honest_update({1.0f, -2.0f}, 0);
  flipper.process(update2, ctx_at(0));
  EXPECT_EQ(update2.data().at("w").values, (std::vector<float>{-1.0f, 2.0f}));
  EXPECT_EQ(flipper.stats().sign_flips, 1);
}

TEST_F(PoisonTest, NoiseIsDeterministicPerSeed) {
  PoisonPlan plan;
  plan.seed = 1234;
  plan.noise_sigma = 3.0;
  auto run = [&plan] {
    PoisonFilter filter(plan);
    Dxo update = honest_update({1.0f, 2.0f, 3.0f, 4.0f}, 0);
    filter.process(update, ctx_at(0));
    return update.data().at("w").values;
  };
  const std::vector<float> a = run();
  const std::vector<float> b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, (std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f}));
}

TEST_F(PoisonTest, NanAndInfInjection) {
  PoisonPlan plan;
  plan.nan_prob = 1.0;
  PoisonFilter nans(plan);
  Dxo update = honest_update({1.0f, 2.0f}, 0);
  nans.process(update, ctx_at(0));
  for (const float v : update.data().at("w").values) {
    EXPECT_TRUE(std::isnan(v));
  }
  EXPECT_EQ(nans.stats().non_finite_values, 2);

  plan.inject_inf = true;
  PoisonFilter infs(plan);
  Dxo update2 = honest_update({1.0f, 2.0f}, 0);
  infs.process(update2, ctx_at(0));
  for (const float v : update2.data().at("w").values) {
    EXPECT_TRUE(std::isinf(v));
  }
}

TEST_F(PoisonTest, StaleReplayResendsOldUpdateWithOldRoundStamp) {
  PoisonPlan plan;
  plan.stale_round_lag = 1;
  PoisonFilter filter(plan);
  // Round 0: only one genuine update in history — passes through.
  Dxo round0 = honest_update({1.0f, 1.0f}, 0);
  filter.process(round0, ctx_at(0));
  EXPECT_EQ(round0.meta_int(Dxo::kMetaRound, -1), 0);
  EXPECT_EQ(round0.data().at("w").values, (std::vector<float>{1.0f, 1.0f}));
  EXPECT_EQ(filter.stats().replays, 0);
  // Round 1: replaced by the genuine round-0 update, old stamp and all.
  Dxo round1 = honest_update({9.0f, 9.0f}, 1);
  filter.process(round1, ctx_at(1));
  EXPECT_EQ(round1.meta_int(Dxo::kMetaRound, -1), 0);
  EXPECT_EQ(round1.data().at("w").values, (std::vector<float>{1.0f, 1.0f}));
  EXPECT_EQ(filter.stats().replays, 1);
}

TEST_F(PoisonTest, SampleCountLieInflatesClaim) {
  PoisonPlan plan;
  plan.sample_count_factor = 1000.0;
  PoisonFilter filter(plan);
  Dxo update = honest_update({1.0f}, 0);
  filter.process(update, ctx_at(0));
  EXPECT_EQ(update.meta_int(Dxo::kMetaNumSamples, 0), 10000);
  EXPECT_EQ(update.data().at("w").values, (std::vector<float>{1.0f}));
  EXPECT_EQ(filter.stats().sample_lies, 1);
}

TEST_F(PoisonTest, SleeperAgentWaitsForStartRound) {
  PoisonPlan plan;
  plan.scale_factor = -10.0;
  plan.start_round = 2;
  PoisonFilter filter(plan);
  for (std::int64_t round = 0; round < 2; ++round) {
    Dxo update = honest_update({1.0f}, round);
    filter.process(update, ctx_at(round));
    EXPECT_EQ(update.data().at("w").values[0], 1.0f);
  }
  Dxo update = honest_update({1.0f}, 2);
  filter.process(update, ctx_at(2));
  EXPECT_EQ(update.data().at("w").values[0], -10.0f);
  EXPECT_EQ(filter.stats().poisoned_updates, 1);
}

// ---------------------------------------------------------------------------
// UpdateValidator unit behavior
// ---------------------------------------------------------------------------

TEST_F(PoisonTest, ValidatorScreensEachDefectWithTypedReason) {
  UpdateValidator validator;
  FedAvgAggregator aggregator(true);
  const nn::StateDict global = dict_of({5.0f, 5.0f});
  validator.reset(global, 3);
  aggregator.reset(global, 3);

  // Metrics payload cannot update the model.
  Dxo metrics;
  EXPECT_EQ(validator.admit(aggregator, "s", metrics).reason,
            RejectReason::kSchemaMismatch);
  // Shape mismatch.
  Dxo wrong_shape(DxoKind::kWeights, dict_of({1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(validator.admit(aggregator, "s", wrong_shape).reason,
            RejectReason::kSchemaMismatch);
  // Non-finite value.
  Dxo nan_update(DxoKind::kWeights,
                 dict_of({std::nanf(""), 1.0f}));
  EXPECT_EQ(validator.admit(aggregator, "s", nan_update).reason,
            RejectReason::kNonFinite);
  // Stale round stamp.
  Dxo stale = honest_update({1.0f, 1.0f}, 0);
  EXPECT_EQ(validator.admit(aggregator, "s", stale).reason,
            RejectReason::kStaleRound);
  // Non-positive sample claim.
  Dxo zero_samples = honest_update({1.0f, 1.0f}, 3);
  zero_samples.set_meta_int(Dxo::kMetaNumSamples, 0);
  EXPECT_EQ(validator.admit(aggregator, "s", zero_samples).reason,
            RejectReason::kBadSampleCount);
  // Nothing reached the aggregator.
  EXPECT_EQ(aggregator.accepted_count(), 0);
  // A clean update goes through.
  EXPECT_TRUE(validator.admit(aggregator, "s", honest_update({1.0f, 1.0f}, 3)).ok());
  EXPECT_EQ(aggregator.accepted_count(), 1);
}

TEST_F(PoisonTest, ValidatorSampleCapAndDisabledBypass) {
  ValidatorConfig config;
  config.max_sample_count = 50;
  UpdateValidator validator(config);
  FedAvgAggregator aggregator(true);
  validator.reset(dict_of({5.0f}), 0);
  aggregator.reset(dict_of({5.0f}), 0);
  Dxo greedy = honest_update({1.0f}, 0);
  greedy.set_meta_int(Dxo::kMetaNumSamples, 10000);
  EXPECT_EQ(validator.admit(aggregator, "s", greedy).reason,
            RejectReason::kBadSampleCount);

  // Master switch off: even NaN passes straight to the aggregator (the
  // undefended baseline bench_poison measures).
  ValidatorConfig off;
  off.enabled = false;
  UpdateValidator bypass(off);
  bypass.reset(dict_of({5.0f}), 0);
  Dxo nan_update(DxoKind::kWeights, dict_of({std::nanf("")}));
  EXPECT_TRUE(bypass.admit(aggregator, "s2", nan_update).ok());
}

TEST_F(PoisonTest, FlagOutliersUsesRobustZScoreOverCompleteRound) {
  ValidatorConfig config;
  config.norm_zscore_threshold = 6.0;
  config.min_updates_for_outlier = 4;
  UpdateValidator validator(config);
  FedAvgAggregator aggregator(true);
  const nn::StateDict global = dict_of({5.0f, 5.0f});
  validator.reset(global, 0);
  aggregator.reset(global, 0);

  // Honest deviation norms ~ [0, 1.4, 1.4, 0.7]; attacker ~ 77.8.
  EXPECT_TRUE(validator.admit(aggregator, "a", honest_update({5.0f, 5.0f}, 0)).ok());
  EXPECT_TRUE(validator.admit(aggregator, "b", honest_update({4.0f, 4.0f}, 0)).ok());
  EXPECT_TRUE(validator.admit(aggregator, "c", honest_update({6.0f, 6.0f}, 0)).ok());
  EXPECT_TRUE(validator.admit(aggregator, "d", honest_update({5.5f, 5.5f}, 0)).ok());
  EXPECT_TRUE(validator.admit(aggregator, "evil",
                              honest_update({-50.0f, -50.0f}, 0)).ok());

  const auto flagged = validator.flag_outliers();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].first, "evil");
  EXPECT_EQ(flagged[0].second.reason, RejectReason::kNormOutlier);

  // judge_norm applies the same statistics to a scored (non-admitted) norm.
  EXPECT_TRUE(validator.judge_norm(1.0).ok());
  EXPECT_EQ(validator.judge_norm(80.0).reason, RejectReason::kNormOutlier);
}

TEST_F(PoisonTest, OutlierPassSkipsSmallPopulations) {
  ValidatorConfig config;
  config.norm_zscore_threshold = 6.0;
  config.min_updates_for_outlier = 4;
  UpdateValidator validator(config);
  FedAvgAggregator aggregator(true);
  validator.reset(dict_of({5.0f}), 0);
  aggregator.reset(dict_of({5.0f}), 0);
  EXPECT_TRUE(validator.admit(aggregator, "a", honest_update({5.0f}, 0)).ok());
  EXPECT_TRUE(validator.admit(aggregator, "evil", honest_update({-99.0f}, 0)).ok());
  EXPECT_TRUE(validator.flag_outliers().empty());  // population of 2 < 4
}

// ---------------------------------------------------------------------------
// SiteReputation unit behavior
// ---------------------------------------------------------------------------

TEST_F(PoisonTest, ReputationQuarantinesAndParoles) {
  SiteReputation rep(ReputationConfig{2, 2});
  EXPECT_FALSE(rep.record_rejection("s"));  // strike 1
  EXPECT_FALSE(rep.quarantined("s"));
  EXPECT_TRUE(rep.record_rejection("s"));  // strike 2 -> quarantined
  EXPECT_TRUE(rep.quarantined("s"));
  EXPECT_EQ(rep.quarantined_count(), 1);
  EXPECT_FALSE(rep.record_clean("s"));  // parole streak 1
  EXPECT_TRUE(rep.quarantined("s"));
  EXPECT_TRUE(rep.record_clean("s"));  // streak 2 -> paroled
  EXPECT_FALSE(rep.quarantined("s"));
  EXPECT_EQ(rep.standings().at("s").times_quarantined, 1);
  EXPECT_EQ(rep.standings().at("s").total_rejections, 2);
  // A rejection mid-streak resets parole progress.
  EXPECT_FALSE(rep.record_rejection("t"));
  EXPECT_TRUE(rep.record_rejection("t"));
  EXPECT_FALSE(rep.record_clean("t"));
  EXPECT_FALSE(rep.record_rejection("t"));  // already quarantined: no re-trigger
  EXPECT_EQ(rep.standings().at("t").clean_streak, 0);
  EXPECT_TRUE(rep.quarantined("t"));
  // An accepted round resets strikes for a healthy site.
  EXPECT_FALSE(rep.record_rejection("u"));
  EXPECT_FALSE(rep.record_clean("u"));
  EXPECT_FALSE(rep.record_rejection("u"));  // strike 1 again, not 2
  EXPECT_FALSE(rep.quarantined("u"));
}

TEST_F(PoisonTest, ReputationDisabledNeverQuarantines) {
  SiteReputation rep{ReputationConfig{}};  // quarantine_after = 0
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(rep.record_rejection("s"));
  EXPECT_FALSE(rep.quarantined("s"));
  EXPECT_EQ(rep.standings().at("s").total_rejections, 10);
}

// ---------------------------------------------------------------------------
// Server integration: typed acks, revocation, quarantine, parole
// ---------------------------------------------------------------------------

/// Manual-dispatcher harness (same shape as faults_test): drives the server
/// protocol one sealed frame at a time with full control over payloads.
class ManualFederation {
 public:
  ManualFederation(ServerConfig config, std::int64_t num_sites,
                   nn::StateDict initial = dict_of({5.0f, 5.0f}))
      : registry_(Provisioner(config.job_id, 17).provision_sites(num_sites)),
        server_(std::make_unique<FederatedServer>(
            config, registry_, std::move(initial),
            std::make_unique<FedAvgAggregator>(true))),
        dispatcher_(server_->dispatcher()) {}

  FederatedServer& server() { return *server_; }

  std::vector<std::uint8_t> call(const std::string& site,
                                 const std::vector<std::uint8_t>& frame) {
    const Credential& cred = registry_.at(site);
    const auto response =
        dispatcher_(seal(cred.name, cred.secret, seq_[site].next(), frame));
    return open(response, cred.secret).payload;
  }

  void register_site(const std::string& site) {
    const RegisterAck ack = decode_register_ack(
        call(site, pack(RegisterRequest{site, registry_.at(site).token})));
    EXPECT_TRUE(ack.accepted);
    sessions_[site] = ack.session_id;
  }

  void register_all(std::int64_t num_sites) {
    for (std::int64_t i = 0; i < num_sites; ++i) {
      register_site("site-" + std::to_string(i + 1));
    }
  }

  TaskMessage get_task(const std::string& site) {
    return decode_task(call(site, pack(GetTaskRequest{sessions_.at(site)})));
  }

  SubmitAck submit_dxo(const std::string& site, std::int64_t round, Dxo dxo) {
    SubmitUpdateRequest req;
    req.session_id = sessions_.at(site);
    req.round = round;
    req.payload = std::move(dxo);
    return decode_submit_ack(call(site, pack(req)));
  }

  SubmitAck submit(const std::string& site, std::int64_t round,
                   std::vector<float> weights) {
    return submit_dxo(site, round, honest_update(std::move(weights), round));
  }

 private:
  std::map<std::string, Credential> registry_;
  std::unique_ptr<FederatedServer> server_;
  Dispatcher dispatcher_;
  std::map<std::string, SequenceSource> seq_;
  std::map<std::string, std::string> sessions_;
};

TEST_F(PoisonTest, ServerAcksCarryTypedRejectReasons) {
  ServerConfig config;
  config.job_id = "reasons-job";
  config.num_rounds = 2;
  config.expected_clients = 2;
  config.min_clients = 2;
  ManualFederation fed(config, 2);
  fed.register_all(2);

  // Non-finite payload.
  const SubmitAck nan_ack =
      fed.submit_dxo("site-1", 0,
                     Dxo(DxoKind::kWeights, dict_of({std::nanf(""), 1.0f})));
  EXPECT_FALSE(nan_ack.accepted);
  EXPECT_EQ(nan_ack.reason, RejectReason::kNonFinite);

  // A resend of the rejected contribution gets the identical verdict
  // (at-least-once delivery, idempotent rejection acks).
  const SubmitAck resent =
      fed.submit_dxo("site-1", 0,
                     Dxo(DxoKind::kWeights, dict_of({std::nanf(""), 1.0f})));
  EXPECT_EQ(resent.reason, RejectReason::kNonFinite);
  EXPECT_EQ(resent.message, nan_ack.message);

  // Stale meta stamp on an otherwise-current submission.
  Dxo stale = honest_update({1.0f, 1.0f}, 0);
  stale.set_meta_int(Dxo::kMetaRound, 7);
  const SubmitAck stale_ack = fed.submit_dxo("site-2", 0, std::move(stale));
  EXPECT_FALSE(stale_ack.accepted);
  EXPECT_EQ(stale_ack.reason, RejectReason::kStaleRound);

  // Both sites resolved by rejection: the round closes with zero accepted
  // contributions, which aborts the run rather than averaging nothing.
  EXPECT_TRUE(fed.server().aborted());
  EXPECT_NE(fed.server().abort_reason().find("rejected"), std::string::npos);
  const SubmitAck dead = fed.submit("site-1", 0, {1.0f, 1.0f});
  EXPECT_EQ(dead.reason, RejectReason::kRunOver);
}

TEST_F(PoisonTest, RejectedSitesDoNotStallTheRound) {
  ServerConfig config;
  config.job_id = "no-stall-job";
  config.num_rounds = 1;
  config.expected_clients = 3;
  config.min_clients = 3;
  ManualFederation fed(config, 3);
  fed.register_all(3);
  EXPECT_TRUE(fed.submit("site-1", 0, {1.0f, 1.0f}).accepted);
  EXPECT_EQ(fed.submit_dxo("site-2", 0,
                           Dxo(DxoKind::kWeights, dict_of({std::nanf(""), 0.0f})))
                .reason,
            RejectReason::kNonFinite);
  // site-2 is resolved (rejected); site-3's acceptance completes the round
  // without any deadline machinery.
  EXPECT_FALSE(fed.server().finished());
  EXPECT_TRUE(fed.submit("site-3", 0, {3.0f, 3.0f}).accepted);
  EXPECT_TRUE(fed.server().finished());
  const auto history = fed.server().history();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].num_contributions, 2);
  EXPECT_EQ(history[0].rejected_updates, 1);
  EXPECT_EQ(history[0].rejections_by_reason.at("non_finite"), 1);
}

TEST_F(PoisonTest, NormOutlierRevokedAtRoundClose) {
  ServerConfig config;
  config.job_id = "outlier-job";
  config.num_rounds = 1;
  config.expected_clients = 5;
  config.min_clients = 5;
  config.validator.norm_zscore_threshold = 6.0;
  config.validator.min_updates_for_outlier = 4;
  ManualFederation fed(config, 5);
  fed.register_all(5);
  // Everyone is admitted at submit time — the outlier verdict needs the
  // round's complete norm population.
  EXPECT_TRUE(fed.submit("site-1", 0, {5.0f, 5.0f}).accepted);
  EXPECT_TRUE(fed.submit("site-2", 0, {4.0f, 4.0f}).accepted);
  EXPECT_TRUE(fed.submit("site-3", 0, {6.0f, 6.0f}).accepted);
  EXPECT_TRUE(fed.submit("site-4", 0, {5.5f, 5.5f}).accepted);
  EXPECT_TRUE(fed.submit("site-5", 0, {-50.0f, -50.0f}).accepted);
  EXPECT_TRUE(fed.server().finished());
  const auto history = fed.server().history();
  ASSERT_EQ(history.size(), 1u);
  // The attacker was revoked before aggregation: 4 contributions averaged.
  EXPECT_EQ(history[0].num_contributions, 4);
  EXPECT_EQ(history[0].rejected_updates, 1);
  EXPECT_EQ(history[0].rejections_by_reason.at("norm_outlier"), 1);
  EXPECT_EQ(fed.server().global_model().at("w").values[0], 5.125f);
  EXPECT_EQ(fed.server().reputation().at("site-5").strikes, 1);
}

TEST_F(PoisonTest, QuarantineScoringAndParoleReadmitsCleanSite) {
  ServerConfig config;
  config.job_id = "parole-job";
  config.num_rounds = 5;
  config.expected_clients = 2;
  config.min_clients = 1;
  config.reputation.quarantine_after = 1;
  config.reputation.parole_after = 2;
  ManualFederation fed(config, 2);
  fed.register_all(2);

  // Round 0: site-2 submits NaN -> strike 1 -> quarantined on the spot.
  const SubmitAck bad = fed.submit_dxo(
      "site-2", 0, Dxo(DxoKind::kWeights, dict_of({std::nanf(""), 0.0f})));
  EXPECT_EQ(bad.reason, RejectReason::kNonFinite);
  EXPECT_EQ(fed.server().quarantined_sites(),
            (std::vector<std::string>{"site-2"}));
  EXPECT_TRUE(fed.submit("site-1", 0, {4.0f, 4.0f}).accepted);

  // Rounds 1-2: site-2 is clean while quarantined. Its uploads are scored
  // (kQuarantined ack), excluded from aggregation, and grow the parole
  // streak; the global model follows site-1 alone.
  for (std::int64_t round = 1; round <= 2; ++round) {
    const SubmitAck scored = fed.submit("site-2", round, {5.0f, 5.0f});
    EXPECT_FALSE(scored.accepted);
    EXPECT_EQ(scored.reason, RejectReason::kQuarantined);
    EXPECT_TRUE(fed.submit("site-1", round, {4.0f, 4.0f}).accepted);
    EXPECT_EQ(fed.server().history().back().num_contributions, 1);
  }
  // Parole landed at round 2's close; round 3 re-admits site-2.
  EXPECT_TRUE(fed.server().quarantined_sites().empty());
  EXPECT_EQ(fed.get_task("site-2").task, TaskKind::kTrain);
  EXPECT_TRUE(fed.submit("site-2", 3, {5.0f, 5.0f}).accepted);
  EXPECT_TRUE(fed.submit("site-1", 3, {4.0f, 4.0f}).accepted);
  const auto history = fed.server().history();
  ASSERT_EQ(history.size(), 4u);
  EXPECT_EQ(history[3].num_contributions, 2);
  EXPECT_EQ(history[1].rejections_by_reason.at("quarantined"), 1);
  EXPECT_EQ(history[1].quarantined_sites, 1);
  EXPECT_EQ(history[3].quarantined_sites, 0);
  EXPECT_EQ(fed.server().reputation().at("site-2").times_quarantined, 1);
}

TEST_F(PoisonTest, QuarantinedSiteStaysLockedUpWhileStillAttacking) {
  ServerConfig config;
  config.job_id = "locked-job";
  config.num_rounds = 4;
  config.expected_clients = 2;
  config.min_clients = 1;
  config.reputation.quarantine_after = 1;
  config.reputation.parole_after = 1;
  ManualFederation fed(config, 2);
  fed.register_all(2);
  for (std::int64_t round = 0; round < 4; ++round) {
    const SubmitAck ack = fed.submit_dxo(
        "site-2", round,
        Dxo(DxoKind::kWeights, dict_of({std::nanf(""), 0.0f})));
    EXPECT_FALSE(ack.accepted);
    EXPECT_EQ(ack.reason, round == 0 ? RejectReason::kNonFinite
                                     : RejectReason::kQuarantined);
    EXPECT_TRUE(fed.submit("site-1", round, {4.0f, 4.0f}).accepted);
  }
  // Scored uploads kept failing the screen: no parole.
  EXPECT_EQ(fed.server().quarantined_sites(),
            (std::vector<std::string>{"site-2"}));
  EXPECT_TRUE(fed.server().finished());
}

// ---------------------------------------------------------------------------
// Undefended baseline: every attack measurably corrupts plain FedAvg
// ---------------------------------------------------------------------------

TEST_F(PoisonTest, EveryAttackCorruptsUndefendedFedAvg) {
  SimulatorConfig config;
  config.num_clients = 4;
  config.num_rounds = 4;
  config.validator.enabled = false;  // no defenses at all

  SimulatorRunner clean = make_runner(config);
  const nn::StateDict reference = clean.run().final_model;

  struct Attack {
    const char* name;
    PoisonPlan plan;
  };
  std::vector<Attack> attacks(6);
  attacks[0].name = "scale";
  attacks[0].plan.scale_factor = -10.0;
  attacks[1].name = "sign_flip";
  attacks[1].plan.sign_flip = true;
  attacks[2].name = "noise";
  attacks[2].plan.noise_sigma = 20.0;
  attacks[3].name = "nan";
  attacks[3].plan.nan_prob = 1.0;
  attacks[4].name = "stale_replay";
  attacks[4].plan.stale_round_lag = 1;
  attacks[5].name = "sample_lie";
  attacks[5].plan.sample_count_factor = 1000.0;

  for (const Attack& attack : attacks) {
    SCOPED_TRACE(attack.name);
    SimulatorRunner runner = make_runner(config);
    runner.set_poison_planner(
        [&attack](std::int64_t index,
                  const std::string&) -> std::optional<PoisonPlan> {
          if (index != 3) return std::nullopt;
          return attack.plan;
        });
    const SimulationResult result = runner.run();
    EXPECT_FALSE(result.aborted);
    // The attack landed: the global model is NOT the honest one.
    EXPECT_FALSE(bit_equal(reference, result.final_model));
    if (attack.plan.nan_prob > 0.0) {
      // NaN through an unguarded mean destroys the model outright.
      EXPECT_TRUE(any_non_finite(result.final_model));
    }
  }
}

// ---------------------------------------------------------------------------
// The acceptance bar: defended 8-site run with one adversary converges
// bit-for-bit to a clean 7-site run, on both transports
// ---------------------------------------------------------------------------

struct AcceptanceAttack {
  const char* name;
  PoisonPlan plan;
  const char* expect_reason;  // recorded on round 0's telemetry
};

std::vector<AcceptanceAttack> acceptance_attacks() {
  std::vector<AcceptanceAttack> attacks(5);
  attacks[0].name = "scale";
  attacks[0].plan.scale_factor = -10.0;
  attacks[0].expect_reason = "norm_outlier";
  attacks[1].name = "sign_flip";
  attacks[1].plan.sign_flip = true;
  attacks[1].expect_reason = "norm_outlier";
  attacks[2].name = "noise";
  attacks[2].plan.noise_sigma = 20.0;
  attacks[2].expect_reason = "norm_outlier";
  attacks[3].name = "nan";
  attacks[3].plan.nan_prob = 1.0;
  attacks[3].expect_reason = "non_finite";
  attacks[4].name = "sample_lie";
  attacks[4].plan.sample_count_factor = 1000.0;
  attacks[4].expect_reason = "bad_sample_count";
  return attacks;
}

void expect_defended_run_matches_clean_reference(bool use_tcp,
                                                 const AcceptanceAttack& attack,
                                                 const nn::StateDict& reference) {
  SimulatorConfig config;
  config.num_clients = 8;
  config.num_rounds = 4;
  config.use_tcp = use_tcp;
  arm_defenses(config);
  SimulatorRunner runner = make_runner(config);
  runner.set_poison_planner(
      [&attack](std::int64_t index,
                const std::string&) -> std::optional<PoisonPlan> {
        if (index != 7) return std::nullopt;  // site-8 is the adversary
        return attack.plan;
      });
  const SimulationResult result = runner.run();
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.quarantined_sites, (std::vector<std::string>{"site-8"}));
  ASSERT_EQ(result.history.size(), 4u);
  // Round 0: the poisoned update was screened out or revoked; the 7 honest
  // contributions aggregated.
  EXPECT_EQ(result.history[0].num_contributions, 7);
  EXPECT_EQ(result.history[0].rejections_by_reason.at(attack.expect_reason), 1);
  // Two strikes quarantine the site; it stays quarantined to the end.
  EXPECT_EQ(result.history[1].quarantined_sites, 1);
  EXPECT_EQ(result.history[3].quarantined_sites, 1);
  // The headline property: bit-for-bit the clean 7-site model.
  EXPECT_TRUE(bit_equal(reference, result.final_model));
}

TEST_F(PoisonTest, DefendedEightSiteRunMatchesCleanSevenSiteRunInProc) {
  SimulatorConfig clean_config;
  clean_config.num_clients = 7;
  clean_config.num_rounds = 4;
  SimulatorRunner clean = make_runner(clean_config);
  const nn::StateDict reference = clean.run().final_model;

  for (const AcceptanceAttack& attack : acceptance_attacks()) {
    SCOPED_TRACE(attack.name);
    expect_defended_run_matches_clean_reference(/*use_tcp=*/false, attack,
                                                reference);
  }
}

TEST_F(PoisonTest, DefendedEightSiteRunMatchesCleanSevenSiteRunOverTcp) {
  SimulatorConfig clean_config;
  clean_config.num_clients = 7;
  clean_config.num_rounds = 4;
  SimulatorRunner clean = make_runner(clean_config);
  const nn::StateDict reference = clean.run().final_model;

  const auto attacks = acceptance_attacks();
  for (const std::size_t idx : {std::size_t{0}, std::size_t{3}}) {
    SCOPED_TRACE(attacks[idx].name);
    expect_defended_run_matches_clean_reference(/*use_tcp=*/true, attacks[idx],
                                                reference);
  }
}

TEST_F(PoisonTest, StaleReplayAttackIsRejectedAndQuarantined) {
  SimulatorConfig config;
  config.num_clients = 8;
  config.num_rounds = 5;
  arm_defenses(config);
  SimulatorRunner runner = make_runner(config);
  runner.set_poison_planner(
      [](std::int64_t index, const std::string&) -> std::optional<PoisonPlan> {
        if (index != 7) return std::nullopt;
        PoisonPlan plan;
        plan.stale_round_lag = 1;
        return plan;
      });
  const SimulationResult result = runner.run();
  EXPECT_FALSE(result.aborted);
  // Round 0 passes through genuinely (no history to replay yet); from round
  // 1 every submission is the previous round's update with its old stamp.
  EXPECT_EQ(result.history[0].num_contributions, 8);
  EXPECT_EQ(result.history[1].rejections_by_reason.at("stale_round"), 1);
  EXPECT_EQ(result.history[2].rejections_by_reason.at("stale_round"), 1);
  // Two stale strikes -> quarantined for the rest of the run.
  EXPECT_EQ(result.quarantined_sites, (std::vector<std::string>{"site-8"}));
  EXPECT_FALSE(any_non_finite(result.final_model));
}

TEST_F(PoisonTest, TwoAdversariesOfEightAreBothQuarantined) {
  SimulatorConfig config;
  config.num_clients = 8;
  config.num_rounds = 4;
  arm_defenses(config);

  SimulatorConfig clean_config;
  clean_config.num_clients = 6;
  clean_config.num_rounds = 4;
  SimulatorRunner clean = make_runner(clean_config);
  const nn::StateDict reference = clean.run().final_model;

  SimulatorRunner runner = make_runner(config);
  runner.set_poison_planner(
      [](std::int64_t index, const std::string&) -> std::optional<PoisonPlan> {
        PoisonPlan plan;
        if (index == 6) {
          plan.nan_prob = 1.0;  // site-7: NaN bomber
          return plan;
        }
        if (index == 7) {
          plan.scale_factor = -10.0;  // site-8: model replacement
          return plan;
        }
        return std::nullopt;
      });
  const SimulationResult result = runner.run();
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.quarantined_sites,
            (std::vector<std::string>{"site-7", "site-8"}));
  EXPECT_EQ(result.history[0].num_contributions, 6);
  EXPECT_TRUE(bit_equal(reference, result.final_model));
}

// ---------------------------------------------------------------------------
// Quarantine survives crash-restart resume (checkpoint v3)
// ---------------------------------------------------------------------------

TEST_F(PoisonTest, QuarantineSurvivesCrashRestartResume) {
  const std::string checkpoint = path("quarantine_resume.bin");
  SimulatorConfig config;
  config.num_clients = 4;
  config.num_rounds = 6;
  arm_defenses(config);
  const auto adversary_planner =
      [](std::int64_t index, const std::string&) -> std::optional<PoisonPlan> {
    if (index != 3) return std::nullopt;
    PoisonPlan plan;
    plan.nan_prob = 1.0;
    return plan;
  };

  // Reference: the 3 honest sites, never interrupted. The defended 4-site
  // run aggregates exactly these sites every round.
  SimulatorConfig clean_config;
  clean_config.num_clients = 3;
  clean_config.num_rounds = 6;
  SimulatorRunner clean = make_runner(clean_config);
  const nn::StateDict reference = clean.run().final_model;

  // Phase 1: run defended with persistence, kill after round 3 (site-4 was
  // quarantined at round 1, so the checkpoint carries the quarantine).
  config.persist_path = checkpoint;
  {
    SimulatorRunner runner = make_runner(config, /*train_ms=*/10);
    runner.set_poison_planner(adversary_planner);
    std::promise<void> round_three_done;
    runner.server().add_round_observer(
        [&round_three_done](std::int64_t round, const nn::StateDict&,
                            const RoundMetrics&) {
          if (round == 3) round_three_done.set_value();
        });
    std::thread killer([&runner, &round_three_done] {
      round_three_done.get_future().wait();
      runner.server().abort("operator kill");
    });
    const SimulationResult first = runner.run();
    killer.join();
    ASSERT_TRUE(first.aborted);
    ASSERT_GE(first.history.size(), 4u);
    ASSERT_LT(first.history.size(), 6u);
    EXPECT_EQ(first.quarantined_sites, (std::vector<std::string>{"site-4"}));
  }

  // Phase 2: a fresh server resumes. The quarantine is restored from the
  // checkpoint BEFORE any traffic — site-4 never re-enters the quorum.
  config.resume = true;
  SimulatorRunner resumed = make_runner(config);
  resumed.set_poison_planner(adversary_planner);
  EXPECT_EQ(resumed.server().quarantined_sites(),
            (std::vector<std::string>{"site-4"}));
  const SimulationResult second = resumed.run();
  EXPECT_FALSE(second.aborted);
  ASSERT_EQ(second.history.size(), 6u);
  EXPECT_EQ(second.quarantined_sites, (std::vector<std::string>{"site-4"}));
  EXPECT_TRUE(bit_equal(reference, second.final_model));
}

// ---------------------------------------------------------------------------
// Validator + robust aggregation interplay
// ---------------------------------------------------------------------------

TEST_F(PoisonTest, MedianAggregatorSurvivesNaNAttackEvenUndefended) {
  SimulatorConfig config;
  config.num_clients = 5;
  config.num_rounds = 3;
  config.validator.enabled = false;
  SimulatorRunner runner(
      config, tiny_model(), std::make_unique<MedianAggregator>(),
      [](std::int64_t i, const std::string& name) {
        return std::make_shared<NudgeLearner>(name, static_cast<float>(i));
      });
  runner.set_poison_planner(
      [](std::int64_t index, const std::string&) -> std::optional<PoisonPlan> {
        if (index != 4) return std::nullopt;
        PoisonPlan plan;
        plan.nan_prob = 1.0;
        return plan;
      });
  const SimulationResult result = runner.run();
  EXPECT_FALSE(result.aborted);
  // NaN values sort past every finite one (nan_last_less): with 1 poisoned
  // site of 5 the elementwise median stays finite.
  EXPECT_FALSE(any_non_finite(result.final_model));
}

}  // namespace
}  // namespace cppflare::flare
