#include "train/clinical_metrics.h"

#include <gtest/gtest.h>

#include "models/lstm_classifier.h"

namespace cppflare::train {
namespace {

TEST(ConfusionMatrixTest, CountsAndDerivedRates) {
  const std::vector<double> scores = {0.9, 0.8, 0.4, 0.3, 0.7, 0.2};
  const std::vector<std::int64_t> labels = {1, 1, 1, 0, 0, 0};
  const ConfusionMatrix cm = confusion_at(scores, labels, 0.5);
  EXPECT_EQ(cm.true_positive, 2);   // 0.9, 0.8
  EXPECT_EQ(cm.false_negative, 1);  // 0.4
  EXPECT_EQ(cm.false_positive, 1);  // 0.7
  EXPECT_EQ(cm.true_negative, 2);   // 0.3, 0.2
  EXPECT_EQ(cm.total(), 6);
  EXPECT_NEAR(cm.accuracy(), 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(cm.sensitivity(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.specificity(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.f1(), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrixTest, ThresholdShiftsTradeoff) {
  const std::vector<double> scores = {0.9, 0.6, 0.4, 0.1};
  const std::vector<std::int64_t> labels = {1, 1, 0, 0};
  EXPECT_EQ(confusion_at(scores, labels, 0.95).true_positive, 0);
  EXPECT_EQ(confusion_at(scores, labels, 0.05).false_positive, 2);
  const ConfusionMatrix mid = confusion_at(scores, labels, 0.5);
  EXPECT_EQ(mid.true_positive, 2);
  EXPECT_EQ(mid.true_negative, 2);
}

TEST(ConfusionMatrixTest, DegenerateDenominatorsAreZero) {
  ConfusionMatrix cm;  // all zeros
  EXPECT_EQ(cm.accuracy(), 0.0);
  EXPECT_EQ(cm.sensitivity(), 0.0);
  EXPECT_EQ(cm.specificity(), 0.0);
  EXPECT_EQ(cm.precision(), 0.0);
  EXPECT_EQ(cm.f1(), 0.0);
}

TEST(ConfusionMatrixTest, SizeMismatchThrows) {
  EXPECT_THROW(confusion_at({0.5}, {1, 0}), Error);
}

TEST(AurocTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(auroc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(auroc({0.1, 0.2, 0.8, 0.9}, {1, 1, 0, 0}), 0.0);
}

TEST(AurocTest, RandomScoresGiveHalf) {
  EXPECT_DOUBLE_EQ(auroc({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0}), 0.5);
}

TEST(AurocTest, HandComputedCase) {
  // scores: pos {0.8, 0.4}, neg {0.6, 0.2}.
  // Pairs: (0.8>0.6)=1, (0.8>0.2)=1, (0.4<0.6)=0, (0.4>0.2)=1 -> 3/4.
  EXPECT_DOUBLE_EQ(auroc({0.8, 0.4, 0.6, 0.2}, {1, 1, 0, 0}), 0.75);
}

TEST(AurocTest, TiesCountHalf) {
  // pos {0.5}, neg {0.5} -> 0.5.
  EXPECT_DOUBLE_EQ(auroc({0.5, 0.5}, {1, 0}), 0.5);
  // pos {0.7, 0.5}, neg {0.5}: pairs (0.7>0.5)=1, (0.5==0.5)=0.5 -> 0.75.
  EXPECT_DOUBLE_EQ(auroc({0.7, 0.5, 0.5}, {1, 1, 0}), 0.75);
}

TEST(AurocTest, SingleClassReturnsHalf) {
  EXPECT_DOUBLE_EQ(auroc({0.9, 0.1}, {1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(auroc({0.9, 0.1}, {0, 0}), 0.5);
}

TEST(AurocTest, InvariantToMonotoneTransform) {
  const std::vector<std::int64_t> labels = {1, 0, 1, 0, 1};
  const std::vector<double> s1 = {0.9, 0.3, 0.6, 0.5, 0.7};
  std::vector<double> s2;
  for (double s : s1) s2.push_back(100.0 * s + 7.0);
  EXPECT_DOUBLE_EQ(auroc(s1, labels), auroc(s2, labels));
}

TEST(ScoreDataset, ProducesProbabilitiesAndLabels) {
  core::Rng rng(1);
  models::ModelConfig c = models::ModelConfig::lstm(16, 8);
  c.hidden = 8;
  c.layers = 1;
  auto model = models::make_classifier(c, rng);

  data::Dataset d;
  for (int i = 0; i < 10; ++i) {
    data::Sample s;
    s.ids = {2, 6, 7, 8, 0, 0, 0, 0};
    s.length = 4;
    s.label = i % 2;
    d.add(s);
  }
  const ScoredPredictions preds = score_dataset(*model, d, 4);
  ASSERT_EQ(preds.scores.size(), 10u);
  ASSERT_EQ(preds.labels.size(), 10u);
  for (double s : preds.scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_THROW(score_dataset(*model, data::Dataset{}, 4), Error);
}

TEST(ScoreDataset, BiasedHeadSaturatesScores) {
  core::Rng rng(2);
  models::ModelConfig c = models::ModelConfig::lstm(16, 8);
  c.hidden = 8;
  c.layers = 1;
  auto model = models::make_classifier(c, rng);
  // Force class-1 logit way up through the head bias.
  nn::StateDict dict = model->state_dict();
  dict.at("head.bias").values = {-50.0f, 50.0f};
  model->load_state_dict(dict);

  data::Dataset d;
  data::Sample s;
  s.ids = {2, 6, 7, 8, 0, 0, 0, 0};
  s.length = 4;
  s.label = 1;
  d.add(s);
  const ScoredPredictions preds = score_dataset(*model, d, 1);
  EXPECT_GT(preds.scores[0], 0.999);
}

}  // namespace
}  // namespace cppflare::train
