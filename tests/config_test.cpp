#include "core/config.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace cppflare::core {
namespace {

TEST(Config, FromArgsParsesKeyValues) {
  Config c = Config::from_args({"lr=0.01", "epochs=5", "name=bert"});
  EXPECT_DOUBLE_EQ(c.get_double("lr", 0), 0.01);
  EXPECT_EQ(c.get_int("epochs", 0), 5);
  EXPECT_EQ(c.get("name", ""), "bert");
}

TEST(Config, FromArgsRejectsMalformed) {
  EXPECT_THROW(Config::from_args({"no_equals"}), ConfigError);
  EXPECT_THROW(Config::from_args({"=value"}), ConfigError);
}

TEST(Config, TypedSettersAndGetters) {
  Config c;
  c.set_int("i", -7);
  c.set_double("d", 2.5);
  c.set_bool("b", true);
  EXPECT_EQ(c.get_int("i", 0), -7);
  EXPECT_DOUBLE_EQ(c.get_double("d", 0), 2.5);
  EXPECT_TRUE(c.get_bool("b", false));
}

TEST(Config, FallbacksWhenMissing) {
  Config c;
  EXPECT_EQ(c.get("missing", "x"), "x");
  EXPECT_EQ(c.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(c.get_double("missing", 1.5), 1.5);
  EXPECT_TRUE(c.get_bool("missing", true));
}

TEST(Config, BadNumericValuesThrow) {
  Config c;
  c.set("n", "12x");
  EXPECT_THROW(c.get_int("n", 0), ConfigError);
  c.set("f", "abc");
  EXPECT_THROW(c.get_double("f", 0), ConfigError);
  c.set("b", "maybe");
  EXPECT_THROW(c.get_bool("b", false), ConfigError);
}

TEST(Config, BoolAcceptsCommonSpellings) {
  Config c;
  for (const char* t : {"true", "1", "yes"}) {
    c.set("k", t);
    EXPECT_TRUE(c.get_bool("k", false)) << t;
  }
  for (const char* f : {"false", "0", "no"}) {
    c.set("k", f);
    EXPECT_FALSE(c.get_bool("k", true)) << f;
  }
}

TEST(Config, RequireThrowsOnMissing) {
  Config c;
  EXPECT_THROW(c.require("nope"), ConfigError);
  c.set_int("x", 3);
  EXPECT_EQ(c.require_int("x"), 3);
}

TEST(Config, MergeOverlays) {
  Config a, b;
  a.set("k1", "a1");
  a.set("k2", "a2");
  b.set("k2", "b2");
  b.set("k3", "b3");
  a.merge(b);
  EXPECT_EQ(a.get("k1", ""), "a1");
  EXPECT_EQ(a.get("k2", ""), "b2");
  EXPECT_EQ(a.get("k3", ""), "b3");
}

TEST(Config, EnvOverridesExistingKeys) {
  Config c;
  c.set_int("num_rounds", 3);
  c.set("model.name", "bert");
  ::setenv("CFTEST_NUM_ROUNDS", "9", 1);
  ::setenv("CFTEST_MODEL_NAME", "lstm", 1);
  ::setenv("CFTEST_UNRELATED", "zzz", 1);
  c.apply_env_overrides("CFTEST_");
  EXPECT_EQ(c.get_int("num_rounds", 0), 9);
  EXPECT_EQ(c.get("model.name", ""), "lstm");
  EXPECT_FALSE(c.has("unrelated"));
  ::unsetenv("CFTEST_NUM_ROUNDS");
  ::unsetenv("CFTEST_MODEL_NAME");
  ::unsetenv("CFTEST_UNRELATED");
}

TEST(Config, ToStringSortedLines) {
  Config c;
  c.set("b", "2");
  c.set("a", "1");
  EXPECT_EQ(c.to_string(), "a=1\nb=2\n");
}

}  // namespace
}  // namespace cppflare::core
