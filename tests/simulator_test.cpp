#include "flare/simulator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <unistd.h>

#include "core/logging.h"

namespace cppflare::flare {
namespace {

nn::StateDict dict_of(std::vector<float> w) {
  nn::StateDict d;
  d.insert("w", {{static_cast<std::int64_t>(w.size())}, std::move(w)});
  return d;
}

/// Learner that moves the global weights halfway toward a site-specific
/// target — a linear-dynamics stand-in for local SGD whose federated fixed
/// point is the weighted mean of the targets.
class HalfwayLearner : public Learner {
 public:
  HalfwayLearner(std::string site, float target, std::int64_t samples)
      : site_(std::move(site)), target_(target), samples_(samples) {}

  Dxo train(const Dxo& global, const FLContext&) override {
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v += 0.5f * (target_ - v);
    }
    Dxo update(DxoKind::kWeights, updated);
    update.set_meta_int(Dxo::kMetaNumSamples, samples_);
    update.set_meta_double(Dxo::kMetaTrainLoss, static_cast<double>(target_));
    update.set_meta_double(Dxo::kMetaValidAcc, 0.5);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float target_;
  std::int64_t samples_;
};

class SimulatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
  }
  void TearDown() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }
};

TEST_F(SimulatorTest, ConvergesToWeightedMeanOfTargets) {
  SimulatorConfig config;
  config.num_clients = 4;
  config.num_rounds = 20;
  const std::vector<float> targets = {0.0f, 4.0f, 8.0f, 12.0f};
  const std::vector<std::int64_t> samples = {10, 10, 10, 10};

  SimulatorRunner runner(config, dict_of({0.0f}),
                         std::make_unique<FedAvgAggregator>(true),
                         [&](std::int64_t i, const std::string& name) {
                           return std::make_shared<HalfwayLearner>(
                               name, targets[static_cast<std::size_t>(i)],
                               samples[static_cast<std::size_t>(i)]);
                         });
  const SimulationResult result = runner.run();
  // Uniform samples: fixed point = mean(targets) = 6.
  EXPECT_NEAR(result.final_model.at("w").values[0], 6.0f, 1e-3f);
  EXPECT_EQ(result.history.size(), 20u);
  EXPECT_GT(result.wall_seconds, 0.0);
}

TEST_F(SimulatorTest, WeightedFixedPointFollowsSampleCounts) {
  SimulatorConfig config;
  config.num_clients = 2;
  config.num_rounds = 25;
  SimulatorRunner runner(config, dict_of({0.0f}),
                         std::make_unique<FedAvgAggregator>(true),
                         [&](std::int64_t i, const std::string& name) {
                           return std::make_shared<HalfwayLearner>(
                               name, i == 0 ? 0.0f : 10.0f, i == 0 ? 300 : 100);
                         });
  const SimulationResult result = runner.run();
  // Fixed point of w <- (300*(w/2) + 100*(w/2 + 5)) / 400 => w = 2.5.
  EXPECT_NEAR(result.final_model.at("w").values[0], 2.5f, 1e-3f);
}

TEST_F(SimulatorTest, TcpTransportProducesSameResult) {
  SimulatorConfig config;
  config.num_clients = 3;
  config.num_rounds = 10;
  config.use_tcp = true;
  SimulatorRunner runner(config, dict_of({0.0f}),
                         std::make_unique<FedAvgAggregator>(true),
                         [&](std::int64_t i, const std::string& name) {
                           return std::make_shared<HalfwayLearner>(
                               name, static_cast<float>(i * 3), 10);
                         });
  const SimulationResult result = runner.run();
  EXPECT_NEAR(result.final_model.at("w").values[0], 3.0f, 1e-2f);
}

TEST_F(SimulatorTest, PersistsCheckpointEveryRound) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("cppflare_sim_ckpt_" + std::to_string(::getpid()) + ".bin"))
          .string();
  SimulatorConfig config;
  config.num_clients = 2;
  config.num_rounds = 3;
  config.persist_path = path;
  SimulatorRunner runner(config, dict_of({0.0f}),
                         std::make_unique<FedAvgAggregator>(true),
                         [&](std::int64_t, const std::string& name) {
                           return std::make_shared<HalfwayLearner>(name, 2.0f, 10);
                         });
  const SimulationResult run = runner.run();
  ASSERT_FALSE(run.aborted);
  ModelPersistor persistor(path);
  const auto checkpoint = persistor.load();
  ASSERT_TRUE(checkpoint.has_value());
  EXPECT_EQ(checkpoint->round, 2);  // last round index
  std::filesystem::remove(path);
}

TEST_F(SimulatorTest, RoundObserverSeesEveryRound) {
  SimulatorConfig config;
  config.num_clients = 2;
  config.num_rounds = 4;
  SimulatorRunner runner(config, dict_of({0.0f}),
                         std::make_unique<FedAvgAggregator>(true),
                         [&](std::int64_t, const std::string& name) {
                           return std::make_shared<HalfwayLearner>(name, 1.0f, 10);
                         });
  std::vector<std::int64_t> rounds;
  std::vector<float> values;
  runner.server().add_round_observer(
      [&](std::int64_t round, const nn::StateDict& model, const RoundMetrics&) {
        rounds.push_back(round);
        values.push_back(model.at("w").values[0]);
      });
  const SimulationResult run = runner.run();
  ASSERT_FALSE(run.aborted);
  EXPECT_EQ(rounds, (std::vector<std::int64_t>{0, 1, 2, 3}));
  // Monotone approach toward the shared target 1.0.
  for (std::size_t i = 1; i < values.size(); ++i) EXPECT_GT(values[i], values[i - 1]);
}

TEST_F(SimulatorTest, ClientCustomizerAddsFilters) {
  SimulatorConfig config;
  config.num_clients = 2;
  config.num_rounds = 1;
  SimulatorRunner runner(config, dict_of({0.0f}),
                         std::make_unique<FedAvgAggregator>(true),
                         [&](std::int64_t, const std::string& name) {
                           return std::make_shared<HalfwayLearner>(name, 100.0f, 10);
                         });
  std::atomic<int> customized{0};
  runner.set_client_customizer([&](FederatedClient& client) {
    customized.fetch_add(1);
    client.outbound_filters().add(std::make_shared<NormClipFilter>(0.25));
  });
  const SimulationResult result = runner.run();
  EXPECT_EQ(customized.load(), 2);
  EXPECT_NEAR(std::fabs(result.final_model.at("w").values[0]), 0.25f, 1e-4f);
}

TEST_F(SimulatorTest, HistoryCarriesClientMetrics) {
  SimulatorConfig config;
  config.num_clients = 2;
  config.num_rounds = 2;
  SimulatorRunner runner(config, dict_of({0.0f}),
                         std::make_unique<FedAvgAggregator>(true),
                         [&](std::int64_t i, const std::string& name) {
                           return std::make_shared<HalfwayLearner>(
                               name, static_cast<float>(i), 10);
                         });
  const SimulationResult result = runner.run();
  ASSERT_EQ(result.history.size(), 2u);
  for (const RoundMetrics& m : result.history) {
    EXPECT_EQ(m.num_contributions, 2);
    EXPECT_EQ(m.total_samples, 20);
    EXPECT_NEAR(m.train_loss, 0.5, 1e-9);  // mean of targets 0 and 1
    EXPECT_NEAR(m.valid_acc, 0.5, 1e-9);
  }
}

TEST_F(SimulatorTest, PartialParticipationSamplesPerRound) {
  SimulatorConfig config;
  config.num_clients = 4;
  config.num_rounds = 6;
  config.clients_per_round = 2;
  std::vector<std::shared_ptr<HalfwayLearner>> learners;
  SimulatorRunner runner(config, dict_of({0.0f}),
                         std::make_unique<FedAvgAggregator>(true),
                         [&](std::int64_t, const std::string& name) {
                           auto l = std::make_shared<HalfwayLearner>(name, 4.0f, 10);
                           learners.push_back(l);
                           return l;
                         });
  const SimulationResult result = runner.run();
  ASSERT_EQ(result.history.size(), 6u);
  for (const RoundMetrics& m : result.history) {
    EXPECT_EQ(m.num_contributions, 2);  // only the sampled pair contributes
  }
  // Sampling varies across rounds (with 6 rounds of 2-of-4, at least two
  // distinct subsets occur for this seed).
  // All clients share the same target so the model still converges toward 4.
  EXPECT_GT(result.final_model.at("w").values[0], 3.0f);
}

TEST_F(SimulatorTest, RequiresLearnerFactory) {
  SimulatorConfig config;
  EXPECT_THROW(SimulatorRunner(config, dict_of({0.0f}),
                               std::make_unique<FedAvgAggregator>(true), nullptr),
               Error);
}

}  // namespace
}  // namespace cppflare::flare
