#include "core/bytes.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/error.h"

namespace cppflare::core {
namespace {

TEST(ByteWriter, ScalarRoundTrip) {
  ByteWriter w;
  w.write_u8(0xab);
  w.write_u16(0x1234);
  w.write_u32(0xdeadbeef);
  w.write_u64(0x0123456789abcdefULL);
  w.write_i64(-42);
  w.write_f32(3.25f);
  w.write_f64(-1.5);
  w.write_bool(true);
  w.write_bool(false);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_u8(), 0xab);
  EXPECT_EQ(r.read_u16(), 0x1234);
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_FLOAT_EQ(r.read_f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.read_f64(), -1.5);
  EXPECT_TRUE(r.read_bool());
  EXPECT_FALSE(r.read_bool());
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteWriter, LittleEndianLayout) {
  ByteWriter w;
  w.write_u32(0x01020304);
  const auto& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[1], 0x03);
  EXPECT_EQ(b[2], 0x02);
  EXPECT_EQ(b[3], 0x01);
}

TEST(ByteWriter, StringRoundTrip) {
  ByteWriter w;
  w.write_string("hello");
  w.write_string("");
  w.write_string(std::string("\0nul\0", 5));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), std::string("\0nul\0", 5));
}

TEST(ByteWriter, VectorRoundTrip) {
  ByteWriter w;
  w.write_f32_vector({1.0f, -2.5f, 3.75f});
  w.write_f32_vector({});
  w.write_i64_vector({-1, 0, 1LL << 40});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_f32_vector(), (std::vector<float>{1.0f, -2.5f, 3.75f}));
  EXPECT_TRUE(r.read_f32_vector().empty());
  EXPECT_EQ(r.read_i64_vector(), (std::vector<std::int64_t>{-1, 0, 1LL << 40}));
}

TEST(ByteWriter, RawAndReadRaw) {
  ByteWriter w;
  const std::uint8_t raw[] = {9, 8, 7};
  w.write_raw(raw, 3);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_raw(3), (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST(ByteReader, TruncatedInputThrows) {
  ByteWriter w;
  w.write_u16(7);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.read_u32(), SerializationError);
  // After a failed read, position is unchanged and a valid read works.
  EXPECT_EQ(r.read_u16(), 7);
}

TEST(ByteReader, TruncatedStringThrows) {
  ByteWriter w;
  w.write_u32(100);  // claims 100 bytes, provides none
  ByteReader r(w.bytes());
  EXPECT_THROW(r.read_string(), SerializationError);
}

TEST(ByteReader, TruncatedVectorThrows) {
  ByteWriter w;
  w.write_u64(10);  // claims 10 floats
  w.write_f32(1.0f);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.read_f32_vector(), SerializationError);
}

TEST(ByteReader, AbsurdVectorLengthRejected) {
  ByteWriter w;
  w.write_u64(~0ULL);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.read_f32_vector(), SerializationError);
  ByteReader r2(w.bytes());
  EXPECT_THROW(r2.read_i64_vector(), SerializationError);
}

TEST(ByteReader, PositionTracking) {
  ByteWriter w;
  w.write_u32(1);
  w.write_u32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.position(), 0u);
  EXPECT_EQ(r.remaining(), 8u);
  r.read_u32();
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_FALSE(r.exhausted());
  r.read_u32();
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteWriter, TakeMovesBuffer) {
  ByteWriter w;
  w.write_u8(1);
  auto bytes = w.take();
  EXPECT_EQ(bytes.size(), 1u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(ByteRoundTrip, SpecialFloats) {
  ByteWriter w;
  w.write_f32(std::numeric_limits<float>::infinity());
  w.write_f32(-0.0f);
  w.write_f64(std::numeric_limits<double>::quiet_NaN());
  ByteReader r(w.bytes());
  EXPECT_TRUE(std::isinf(r.read_f32()));
  EXPECT_EQ(r.read_f32(), 0.0f);
  EXPECT_TRUE(std::isnan(r.read_f64()));
}

}  // namespace
}  // namespace cppflare::core
