// Deterministic crash-point death tests (DESIGN.md §15).
//
// The acceptance bar for the durable coordinator: for EVERY registered
// crash point, a subprocess coordinator killed (real SIGKILL, no unwinding)
// at that point, then restarted against the same checkpoint + journal
// files, completes the federation with a final model memcmp-equal to a
// never-crashed reference run — and sites whose contributions were already
// journaled are not asked to train that round again.
//
// Harness shape: the test binary re-execs itself as `--crash-child
// <scenario> <dir> <incarnation>`; the parent arms one crash point in the
// child's environment (CPPFLARE_CRASHPOINT), asserts the child died by
// SIGKILL, re-runs the child clean, and diffs the result. Scenarios cover
// the threaded and TCP transports and a masked (secure-agg) federation that
// journal-replays from inside the recovery freeze.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/backoff.h"
#include "core/bytes.h"
#include "core/crashpoint.h"
#include "core/error.h"
#include "core/logging.h"
#include "flare/journal.h"
#include "flare/messages.h"
#include "flare/provision.h"
#include "flare/secure_agg.h"
#include "flare/secure_channel.h"
#include "flare/server.h"
#include "flare/simulator.h"

namespace cppflare::flare {
namespace crash_harness {

nn::StateDict dict_of(std::vector<float> w) {
  nn::StateDict d;
  d.insert("w", {{static_cast<std::int64_t>(w.size())}, std::move(w)});
  return d;
}

nn::StateDict tiny_model() { return dict_of({0.0f, 0.0f, 0.0f, 0.0f}); }

/// Constant learner that appends "<round> <site>" to a per-incarnation log
/// before returning, so the parent can prove a replayed site never trained
/// its round twice. A crash_round >= 0 makes the site throw instead (the
/// permanently-dead site of the masked scenario).
class LoggedConstLearner : public Learner {
 public:
  LoggedConstLearner(std::string site, float value, std::string log_path,
                     std::int64_t crash_round)
      : site_(std::move(site)),
        value_(value),
        log_path_(std::move(log_path)),
        crash_round_(crash_round) {}

  Dxo train(const Dxo& global, const FLContext& ctx) override {
    if (crash_round_ >= 0 && ctx.current_round >= crash_round_) {
      throw Error("site dead from round " + std::to_string(crash_round_));
    }
    {
      std::ofstream log(log_path_, std::ios::app);
      log << ctx.current_round << " " << site_ << "\n";
    }
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v = value_;
    }
    Dxo update(DxoKind::kWeights, updated);
    update.set_meta_int(Dxo::kMetaNumSamples, 10);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float value_;
  std::string log_path_;
  std::int64_t crash_round_;
};

void write_final(const std::string& dir, const nn::StateDict& model) {
  core::ByteWriter w;
  model.serialize(w);
  std::ofstream out(dir + "/final.bin", std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(w.bytes().data()),
            static_cast<std::streamsize>(w.size()));
}

/// Threaded / TCP federation: 4 constant-learner sites, 3 rounds,
/// checkpoint + journal under `dir`. Written to be restart-oblivious: the
/// same code path runs fresh, resumed mid-round, and resumed post-commit.
int run_plain(const std::string& dir, bool use_tcp, const std::string& inc) {
  SimulatorConfig config;
  config.job_id = "crash-plain";
  config.num_clients = 4;
  config.num_rounds = 3;
  config.use_tcp = use_tcp;
  config.persist_path = dir + "/model.bin";
  config.resume = true;
  config.journal = true;
  const std::string log = dir + "/trained_" + inc + ".txt";
  SimulatorRunner runner(
      config, tiny_model(), std::make_unique<FedAvgAggregator>(false),
      [log](std::int64_t i, const std::string& name) {
        return std::make_shared<LoggedConstLearner>(
            name, 0.5f * static_cast<float>(i), log, -1);
      });
  const SimulationResult result = runner.run();
  if (result.aborted) {
    std::fprintf(stderr, "child aborted: %s\n", result.abort_reason.c_str());
    return 3;
  }
  write_final(dir, result.final_model);
  return 0;
}

/// Masked federation with a permanently dead site: every round closes on
/// the deadline with 3 of 4 contributions and detours through mask
/// recovery, so recovery.* crash points fire inside the freeze.
int run_masked(const std::string& dir, const std::string& inc) {
  SimulatorConfig config;
  config.job_id = "crash-masked";
  config.num_clients = 4;
  config.num_rounds = 2;
  config.min_clients = 3;
  config.round_deadline_ms = 300;
  config.secure_agg.enabled = true;
  config.secure_agg.dealer_seed = 99;
  config.persist_path = dir + "/model.bin";
  config.resume = true;
  config.journal = true;
  config.journal_sync = core::WalSyncPolicy::kEveryRecord;
  const std::string log = dir + "/trained_" + inc + ".txt";
  SimulatorRunner runner(
      config, tiny_model(), std::make_unique<FedAvgAggregator>(false),
      [log](std::int64_t i, const std::string& name) {
        return std::make_shared<LoggedConstLearner>(
            name, 0.5f * static_cast<float>(i), log, i == 3 ? 0 : -1);
      });
  const SimulationResult result = runner.run();
  if (result.aborted) {
    std::fprintf(stderr, "child aborted: %s\n", result.abort_reason.c_str());
    return 3;
  }
  write_final(dir, result.final_model);
  return 0;
}

/// Wire-level masked federation whose recovery demotes a survivor: site-4
/// never submits (drop at round close), site-3 submits but never answers
/// its UnmaskRequest (demoted at the wave deadline — recovery.wave.mid
/// fires inside that demotion). The driver is adaptive, not scripted: it
/// reacts to whatever the (possibly replayed) server asks next, so the same
/// loop completes a fresh run and one resumed from inside any wave.
int run_wave(const std::string& dir, const std::string&) {
  ServerConfig config;
  config.job_id = "crash-wave";
  config.num_rounds = 1;
  config.expected_clients = 4;
  config.min_clients = 2;
  config.round_deadline_ms = 150;
  config.secure_agg.enabled = true;
  config.secure_agg.recovery_deadline_ms = 400;

  const auto registry = Provisioner(config.job_id, 17).provision_sites(4);
  auto persistor = std::make_shared<ModelPersistor>(dir + "/model.bin");
  auto journal = std::make_shared<RoundJournal>(
      dir + "/model.bin.journal", core::WalSyncPolicy::kEveryRecord);
  FederatedServer server(config, registry, dict_of({0.0f, 0.0f}),
                         std::make_unique<MaskedFedAvgAggregator>(16),
                         persistor, persistor->load(), std::move(journal));
  Dispatcher dispatcher = server.dispatcher();

  std::vector<std::string> names = {"site-1", "site-2", "site-3", "site-4"};
  std::map<std::string, std::shared_ptr<SecureAggMaskFilter>> maskers;
  for (const std::string& name : names) {
    maskers[name] =
        make_secure_agg_mask_filter(config.job_id, 7, name, names);
  }
  std::map<std::string, SequenceSource> seq;
  std::map<std::string, std::string> sessions;
  const auto call = [&](const std::string& site,
                        const std::vector<std::uint8_t>& frame) {
    const Credential& cred = registry.at(site);
    const auto response =
        dispatcher(seal(cred.name, cred.secret, seq[site].next(), frame));
    return open(response, cred.secret).payload;
  };
  for (const std::string& site : names) {
    const RegisterAck ack = decode_register_ack(
        call(site, pack(RegisterRequest{site, registry.at(site).token})));
    if (!ack.accepted) return 4;
    sessions[site] = ack.session_id;
  }

  const std::map<std::string, std::vector<float>> values = {
      {"site-1", {1.0f, 2.0f}},
      {"site-2", {3.0f, -1.0f}},
      {"site-3", {5.0f, 5.0f}}};
  std::map<std::string, std::int64_t> answered = {{"site-1", -1},
                                                  {"site-2", -1}};
  // site-4 never polls; site-3 trains when asked but never unmasks.
  for (int spin = 0; spin < 3000 && !server.finished() && !server.aborted();
       ++spin) {
    for (const std::string site : {"site-1", "site-2", "site-3"}) {
      const auto frame = call(site, pack(GetTaskRequest{sessions.at(site)}));
      if (peek_type(frame) == MsgType::kTask &&
          decode_task(frame).task == TaskKind::kTrain) {
        SubmitUpdateRequest req;
        req.session_id = sessions.at(site);
        req.round = 0;
        req.payload = Dxo(DxoKind::kWeights, dict_of(values.at(site)));
        req.payload.set_meta_int(Dxo::kMetaNumSamples, 10);
        FLContext ctx;
        ctx.current_round = 0;
        maskers.at(site)->process(req.payload, ctx);
        (void)decode_submit_ack(call(site, pack(req)));
      } else if (peek_type(frame) == MsgType::kUnmaskRequest &&
                 answered.count(site) != 0) {
        const UnmaskRequest req = decode_unmask_request(frame);
        if (req.wave > answered.at(site)) {
          const Dxo share = maskers.at(site)->unmask_share(
              req.dropped, req.round, req.skeleton.data());
          (void)decode_submit_ack(
              call(site, pack(UnmaskResponse{sessions.at(site), req.round,
                                             req.wave, share})));
          answered.at(site) = req.wave;
        }
      }
    }
    core::Backoff::sleep_ms(10);
  }
  if (!server.finished()) {
    std::fprintf(stderr, "wave child did not finish: %s\n",
                 server.abort_reason().c_str());
    return 3;
  }
  write_final(dir, server.global_model());
  return 0;
}

int child_main(int argc, char** argv) {
  if (argc < 5) return 4;
  const std::string scenario = argv[2];
  const std::string dir = argv[3];
  const std::string inc = argv[4];
  core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
  try {
    if (scenario == "plain-threaded") return run_plain(dir, false, inc);
    if (scenario == "plain-tcp") return run_plain(dir, true, inc);
    if (scenario == "masked-dead") return run_masked(dir, inc);
    if (scenario == "manual-wave") return run_wave(dir, inc);
    std::fprintf(stderr, "unknown scenario '%s'\n", scenario.c_str());
    return 4;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "child threw: %s\n", e.what());
    return 4;
  }
}

}  // namespace crash_harness

namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

/// Which scenario exercises each registered crash point. CatalogIsCovered
/// asserts this map stays total as points are added.
const std::map<std::string, std::string>& point_scenarios() {
  static const std::map<std::string, std::string> scenarios = {
      {"persist.write.after", "plain-threaded"},
      {"persist.rename.before", "plain-threaded"},
      {"persist.rename.after", "plain-threaded"},
      {"journal.open.after", "plain-threaded"},
      {"journal.append.after", "plain-threaded"},
      {"journal.commit.before", "plain-threaded"},
      {"journal.commit.after", "plain-threaded"},
      {"journal.compact.before", "plain-threaded"},
      {"replay.mid", "plain-threaded"},
      {"recovery.begin.after", "masked-dead"},
      {"recovery.share.after", "masked-dead"},
      {"recovery.wave.mid", "manual-wave"},
  };
  return scenarios;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
    root_ = std::filesystem::temp_directory_path() /
            ("cppflare_crash_" + std::to_string(::getpid()));
    std::filesystem::create_directories(root_);
  }
  void TearDown() override {
    std::filesystem::remove_all(root_);
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }

  std::string fresh_dir(const std::string& label) {
    std::string clean = label;
    for (char& c : clean) {
      if (c == '.' || c == '@' || c == '/') c = '_';
    }
    const auto dir = root_ / clean;
    std::filesystem::create_directories(dir);
    return dir.string();
  }

  /// fork + re-exec this binary as a coordinator child. `crash_point` lands
  /// in CPPFLARE_CRASHPOINT (empty = run clean). Returns the raw wait()
  /// status so callers can distinguish SIGKILL from a clean exit.
  int run_child(const std::string& scenario, const std::string& dir,
                const std::string& inc, const std::string& crash_point) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      if (crash_point.empty()) {
        ::unsetenv("CPPFLARE_CRASHPOINT");
      } else {
        ::setenv("CPPFLARE_CRASHPOINT", crash_point.c_str(), 1);
      }
      ::execl("/proc/self/exe", "crash_recovery_test", "--crash-child",
              scenario.c_str(), dir.c_str(), inc.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return status;
  }

  static std::vector<std::uint8_t> slurp(const std::string& file) {
    std::ifstream in(file, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
  }

  /// The never-crashed reference for `scenario`, computed once per test
  /// process (same child binary, no crash point armed).
  std::vector<std::uint8_t> reference_final(const std::string& scenario) {
    auto it = references_.find(scenario);
    if (it != references_.end()) return it->second;
    const std::string dir = fresh_dir("ref_" + scenario);
    const int status = run_child(scenario, dir, "ref", "");
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "reference run for " << scenario << " failed, status " << status;
    const auto bytes = slurp(dir + "/final.bin");
    EXPECT_FALSE(bytes.empty());
    references_[scenario] = bytes;
    return bytes;
  }

  /// The (round, site) pairs journaled as accepted — what the restarted
  /// coordinator must NOT ask to train again.
  static std::set<std::pair<std::int64_t, std::string>> journaled_accepts(
      const std::string& journal_path) {
    std::set<std::pair<std::int64_t, std::string>> accepted;
    if (!std::filesystem::exists(journal_path)) return accepted;
    std::int64_t open_round = -1;
    for (const JournalEvent& ev : RoundJournal::read(journal_path)) {
      switch (ev.type) {
        case JournalEventType::kRoundOpen:
          open_round = ev.round;
          break;
        case JournalEventType::kCommit:
          open_round = -1;
          break;
        case JournalEventType::kAccepted:
          if (open_round >= 0) accepted.insert({open_round, ev.site});
          break;
        default:
          break;
      }
    }
    return accepted;
  }

  static std::set<std::pair<std::int64_t, std::string>> trained_pairs(
      const std::string& log_path) {
    std::set<std::pair<std::int64_t, std::string>> trained;
    std::ifstream in(log_path);
    std::int64_t round = 0;
    std::string site;
    while (in >> round >> site) trained.insert({round, site});
    return trained;
  }

  /// Kill at `point`, read what the journal promises, restart clean, and
  /// assert (a) SIGKILL really happened, (b) the completer's final model is
  /// byte-identical to the never-crashed reference, (c) journaled accepts
  /// were not re-trained by the completer.
  void run_crash_cycle(const std::string& scenario, const std::string& point) {
    SCOPED_TRACE(scenario + " @ " + point);
    const std::string dir = fresh_dir(scenario + "_" + point);
    const int killed = run_child(scenario, dir, "a", point);
    ASSERT_TRUE(WIFSIGNALED(killed))
        << "child survived its crash point (status " << killed << ")";
    ASSERT_EQ(WTERMSIG(killed), SIGKILL);

    const auto accepts = journaled_accepts(dir + "/model.bin.journal");
    const int completed = run_child(scenario, dir, "b", "");
    ASSERT_TRUE(WIFEXITED(completed) && WEXITSTATUS(completed) == 0)
        << "completer failed with status " << completed;

    const auto final_bytes = slurp(dir + "/final.bin");
    ASSERT_FALSE(final_bytes.empty());
    EXPECT_EQ(final_bytes, reference_final(scenario))
        << "recovered run diverged from the never-crashed reference";

    const auto retrained = trained_pairs(dir + "/trained_b.txt");
    for (const auto& [round, site] : accepts) {
      EXPECT_EQ(retrained.count({round, site}), 0u)
          << site << " was re-trained for round " << round
          << " despite its journaled contribution";
    }
  }

  std::map<std::string, std::vector<std::uint8_t>> references_;
  std::filesystem::path root_;
};

TEST_F(CrashRecoveryTest, CatalogIsCoveredByScenarios) {
  // Every registered crash point must be mapped to a death-test scenario —
  // adding a CF_CRASHPOINT without covering it here is a test failure.
  const auto& catalog = core::crashpoint_catalog();
  EXPECT_EQ(catalog.size(), point_scenarios().size());
  for (const std::string& name : catalog) {
    EXPECT_EQ(point_scenarios().count(name), 1u)
        << "crash point '" << name << "' has no death-test scenario";
  }
}

TEST_F(CrashRecoveryTest, ThreadedKillAtEveryPersistAndJournalPoint) {
  if (kTsan) GTEST_SKIP() << "fork-based death tests are timing-fragile under TSan";
  for (const auto& [point, scenario] : point_scenarios()) {
    if (scenario != "plain-threaded" || point == "replay.mid") continue;
    run_crash_cycle("plain-threaded", point);
    if (HasFatalFailure()) return;
  }
}

TEST_F(CrashRecoveryTest, TcpTransportSurvivesMidRoundKills) {
  if (kTsan) GTEST_SKIP() << "fork-based death tests are timing-fragile under TSan";
  // The wire path changes nothing about durability: re-run the core
  // mid-round points over loopback TCP.
  for (const std::string point :
       {"journal.append.after", "persist.rename.before",
        "journal.commit.before"}) {
    run_crash_cycle("plain-tcp", point);
    if (HasFatalFailure()) return;
  }
}

TEST_F(CrashRecoveryTest, DoubleCrashKillsTheReplayItself) {
  if (kTsan) GTEST_SKIP() << "fork-based death tests are timing-fragile under TSan";
  // Crash mid-round, then crash the NEXT incarnation inside its journal
  // replay: the journal is only compacted at the commit barrier, so the
  // third incarnation replays the same log and completes.
  const std::string dir = fresh_dir("double_crash");
  const int first = run_child("plain-threaded", dir, "a", "journal.append.after");
  ASSERT_TRUE(WIFSIGNALED(first) && WTERMSIG(first) == SIGKILL);
  const auto accepts = journaled_accepts(dir + "/model.bin.journal");
  ASSERT_FALSE(accepts.empty());

  const int second = run_child("plain-threaded", dir, "b", "replay.mid");
  ASSERT_TRUE(WIFSIGNALED(second) && WTERMSIG(second) == SIGKILL)
      << "replay.mid did not fire — the second incarnation found no journal";

  const int third = run_child("plain-threaded", dir, "c", "");
  ASSERT_TRUE(WIFEXITED(third) && WEXITSTATUS(third) == 0);
  EXPECT_EQ(slurp(dir + "/final.bin"), reference_final("plain-threaded"));
  const auto retrained = trained_pairs(dir + "/trained_c.txt");
  for (const auto& [round, site] : accepts) {
    EXPECT_EQ(retrained.count({round, site}), 0u);
  }
}

TEST_F(CrashRecoveryTest, MaskedRoundReplaysFromInsideTheRecoveryFreeze) {
  if (kTsan) GTEST_SKIP() << "fork-based death tests are timing-fragile under TSan";
  for (const std::string point :
       {"recovery.begin.after", "recovery.share.after"}) {
    run_crash_cycle("masked-dead", point);
    if (HasFatalFailure()) return;
  }
}

TEST_F(CrashRecoveryTest, DemotionCascadeSurvivesAKillMidWave) {
  if (kTsan) GTEST_SKIP() << "fork-based death tests are timing-fragile under TSan";
  run_crash_cycle("manual-wave", "recovery.wave.mid");
}

TEST_F(CrashRecoveryTest, LiveJournalingFederationIsRaceFree) {
  // No fork: a journaling federation under full concurrent client traffic,
  // here for the TSan leg of CI (the death tests above skip under TSan).
  SimulatorConfig config;
  config.job_id = "tsan-journal";
  config.num_clients = 6;
  config.num_rounds = 3;
  config.persist_path =
      (root_ / "tsan_model.bin").string();
  config.journal = true;
  SimulatorRunner runner(
      config, crash_harness::tiny_model(),
      std::make_unique<FedAvgAggregator>(false),
      [](std::int64_t i, const std::string& name) {
        return std::make_shared<crash_harness::LoggedConstLearner>(
            name, 0.25f * static_cast<float>(i), "/dev/null", -1);
      });
  const SimulationResult result = runner.run();
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  EXPECT_EQ(result.history.size(), 3u);
}

}  // namespace
}  // namespace cppflare::flare

int main(int argc, char** argv) {
  if (argc >= 5 && std::strcmp(argv[1], "--crash-child") == 0) {
    return cppflare::flare::crash_harness::child_main(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
