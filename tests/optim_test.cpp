#include "optim/optimizer.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace cppflare::optim {
namespace {

using tensor::Tensor;

/// Minimizes f(w) = ||w - target||^2 and returns the final distance.
template <typename MakeOpt>
float run_quadratic(MakeOpt make_opt, int steps) {
  Tensor w = Tensor::from_data({3}, {5.0f, -4.0f, 2.0f}, true);
  Tensor target = Tensor::from_data({3}, {1.0f, 2.0f, -1.0f});
  auto opt = make_opt(std::vector<Tensor>{w});
  for (int i = 0; i < steps; ++i) {
    Tensor diff = tensor::sub(w, target);
    Tensor loss = tensor::sum_all(tensor::mul(diff, diff));
    opt->zero_grad();
    loss.backward();
    opt->step();
  }
  float dist = 0;
  for (int i = 0; i < 3; ++i) {
    const float d = w.data()[i] - target.data()[i];
    dist += d * d;
  }
  return dist;
}

TEST(Sgd, ConvergesOnQuadratic) {
  const float dist = run_quadratic(
      [](std::vector<Tensor> p) { return std::make_unique<Sgd>(p, 0.1f); }, 100);
  EXPECT_LT(dist, 1e-6f);
}

TEST(Sgd, MomentumConvergesFaster) {
  const float plain = run_quadratic(
      [](std::vector<Tensor> p) { return std::make_unique<Sgd>(p, 0.02f); }, 30);
  const float momentum = run_quadratic(
      [](std::vector<Tensor> p) { return std::make_unique<Sgd>(p, 0.02f, 0.9f); },
      30);
  EXPECT_LT(momentum, plain);
}

TEST(Adam, ConvergesOnQuadratic) {
  const float dist = run_quadratic(
      [](std::vector<Tensor> p) { return std::make_unique<Adam>(p, 0.3f); }, 200);
  EXPECT_LT(dist, 1e-3f);
}

TEST(Adam, StepCounterAdvances) {
  Tensor w = Tensor::from_data({1}, {1.0f}, true);
  Adam adam({w}, 0.1f);
  EXPECT_EQ(adam.steps_taken(), 0);
  tensor::sum_all(tensor::mul(w, w)).backward();
  adam.step();
  adam.step();
  EXPECT_EQ(adam.steps_taken(), 2);
}

TEST(Adam, WeightDecayShrinksWeights) {
  Tensor w = Tensor::from_data({1}, {10.0f}, true);
  Adam adam({w}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  // With zero loss gradient the decay alone must move w toward zero.
  w.mutable_grad();  // allocate zero grad buffer
  for (int i = 0; i < 50; ++i) adam.step();
  EXPECT_LT(std::fabs(w.data()[0]), 10.0f);
}

TEST(Optimizer, RejectsEmptyOrNonGradParams) {
  EXPECT_THROW(Sgd({}, 0.1f), Error);
  Tensor w = Tensor::zeros({2}, /*requires_grad=*/false);
  EXPECT_THROW(Sgd({w}, 0.1f), Error);
}

TEST(Optimizer, GradNormAndClipping) {
  Tensor w = Tensor::from_data({2}, {0.0f, 0.0f}, true);
  Sgd sgd({w}, 0.1f);
  auto& g = w.mutable_grad();
  g[0] = 3.0f;
  g[1] = 4.0f;
  EXPECT_FLOAT_EQ(sgd.grad_norm(), 5.0f);
  const float pre = sgd.clip_grad_norm(1.0f);
  EXPECT_FLOAT_EQ(pre, 5.0f);
  EXPECT_NEAR(sgd.grad_norm(), 1.0f, 1e-5f);
  EXPECT_NEAR(w.grad()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(w.grad()[1], 0.8f, 1e-5f);
}

TEST(Optimizer, ClipBelowThresholdNoop) {
  Tensor w = Tensor::from_data({1}, {0.0f}, true);
  Sgd sgd({w}, 0.1f);
  w.mutable_grad()[0] = 0.5f;
  sgd.clip_grad_norm(1.0f);
  EXPECT_FLOAT_EQ(w.grad()[0], 0.5f);
}

TEST(Optimizer, SkipsParamsWithoutGradBuffers) {
  Tensor a = Tensor::from_data({1}, {1.0f}, true);
  Tensor b = Tensor::from_data({1}, {1.0f}, true);
  Sgd sgd({a, b}, 0.5f);
  // Only a participates in the loss.
  tensor::sum_all(tensor::mul(a, a)).backward();
  sgd.step();
  EXPECT_NE(a.data()[0], 1.0f);
  EXPECT_EQ(b.data()[0], 1.0f);
}

TEST(LrSchedules, Constant) {
  ConstantLr lr(0.01f);
  EXPECT_FLOAT_EQ(lr.lr_at(0), 0.01f);
  EXPECT_FLOAT_EQ(lr.lr_at(1000), 0.01f);
}

TEST(LrSchedules, StepDecay) {
  StepDecayLr lr(1.0f, 10, 0.5f);
  EXPECT_FLOAT_EQ(lr.lr_at(0), 1.0f);
  EXPECT_FLOAT_EQ(lr.lr_at(9), 1.0f);
  EXPECT_FLOAT_EQ(lr.lr_at(10), 0.5f);
  EXPECT_FLOAT_EQ(lr.lr_at(25), 0.25f);
  EXPECT_THROW(StepDecayLr(1.0f, 0, 0.5f), Error);
}

TEST(LrSchedules, WarmupLinear) {
  WarmupLinearLr lr(1.0f, 10, 110);
  EXPECT_NEAR(lr.lr_at(0), 0.1f, 1e-6f);
  EXPECT_NEAR(lr.lr_at(9), 1.0f, 1e-6f);
  EXPECT_NEAR(lr.lr_at(10), 1.0f, 1e-6f);
  EXPECT_NEAR(lr.lr_at(60), 0.5f, 1e-6f);
  EXPECT_NEAR(lr.lr_at(110), 0.0f, 1e-6f);
  EXPECT_NEAR(lr.lr_at(200), 0.0f, 1e-6f);
  EXPECT_THROW(WarmupLinearLr(1.0f, 10, 10), Error);
}

TEST(LrSchedules, ApplySetsOptimizerLr) {
  Tensor w = Tensor::from_data({1}, {1.0f}, true);
  Sgd sgd({w}, 1.0f);
  StepDecayLr schedule(1.0f, 5, 0.1f);
  schedule.apply(sgd, 12);
  EXPECT_NEAR(sgd.lr(), 0.01f, 1e-6f);
}

}  // namespace
}  // namespace cppflare::optim
