// The LOG(level) macro picks up the translation unit's component name.
#define CPPFLARE_LOG_COMPONENT "UnitComponent"

#include "core/logging.h"

#include <gtest/gtest.h>

#include <regex>
#include <sstream>

namespace cppflare::core {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LogConfig::instance().set_sink(&out_);
    LogConfig::instance().set_threshold(LogLevel::kDebug);
  }
  void TearDown() override {
    LogConfig::instance().set_sink(nullptr);
    LogConfig::instance().set_threshold(LogLevel::kInfo);
  }
  std::ostringstream out_;
};

TEST_F(LoggingTest, NvflareStyleFormat) {
  Logger log("CiBertLearner");
  log.info("Local epoch site-7: 1/10");
  // "2023-04-07 06:33:33,911 - CiBertLearner - INFO: Local epoch site-7: 1/10"
  const std::regex pattern(
      R"(^\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2},\d{3} - CiBertLearner - INFO: Local epoch site-7: 1/10\n$)");
  EXPECT_TRUE(std::regex_match(out_.str(), pattern)) << out_.str();
}

TEST_F(LoggingTest, ThresholdSuppressesLowerLevels) {
  LogConfig::instance().set_threshold(LogLevel::kWarn);
  Logger log("X");
  log.debug("d");
  log.info("i");
  EXPECT_TRUE(out_.str().empty());
  log.warn("w");
  log.error("e");
  EXPECT_NE(out_.str().find("WARN: w"), std::string::npos);
  EXPECT_NE(out_.str().find("ERROR: e"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  LogConfig::instance().set_threshold(LogLevel::kOff);
  Logger log("X");
  log.error("nope");
  EXPECT_TRUE(out_.str().empty());
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, TimestampShape) {
  const std::string ts = timestamp_now();
  const std::regex pattern(R"(^\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2},\d{3}$)");
  EXPECT_TRUE(std::regex_match(ts, pattern)) << ts;
}

TEST_F(LoggingTest, MultipleLinesAppend) {
  Logger log("A");
  log.info("one");
  log.info("two");
  const std::string s = out_.str();
  EXPECT_NE(s.find("one\n"), std::string::npos);
  EXPECT_NE(s.find("two\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Structured event API (LOG / LOG_AS / LogEvent)
// ---------------------------------------------------------------------------

TEST_F(LoggingTest, StructuredEventKeepsNvflareLinePrefix) {
  LOG(info).msg("Round 3 started.").kv("round", 3).kv("site", "site-1");
  const std::regex pattern(
      R"(^\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2},\d{3} - UnitComponent - INFO: Round 3 started\. round=3 site=site-1\n$)");
  EXPECT_TRUE(std::regex_match(out_.str(), pattern)) << out_.str();
}

TEST_F(LoggingTest, LogAsNamesComponentInline) {
  LOG_AS("ClientManager", warn).msg("bad token").kv("site", "site-9");
  EXPECT_NE(out_.str().find(" - ClientManager - WARN: bad token site=site-9\n"),
            std::string::npos)
      << out_.str();
}

TEST_F(LoggingTest, KvValueTypes) {
  LOG(info)
      .msg("m")
      .kv("i", std::int64_t{-42})
      .kv("u", 7u)
      .kv("d", 0.5)
      .kv("b_true", true)
      .kv("b_false", false)
      .kv("s", std::string("plain"));
  EXPECT_NE(out_.str().find(
                "INFO: m i=-42 u=7 d=0.5 b_true=true b_false=false s=plain"),
            std::string::npos)
      << out_.str();
}

TEST_F(LoggingTest, KvQuotesAwkwardValues) {
  LOG(info)
      .msg("m")
      .kv("spaced", "two words")
      .kv("empty", "")
      .kv("quoted", "say \"hi\"")
      .kv("eq", "a=b");
  // Values with spaces/quotes/equals (or empty) are quoted with \-escapes so
  // the line still splits unambiguously on ` key=`.
  EXPECT_NE(out_.str().find(
                "m spaced=\"two words\" empty=\"\" quoted=\"say \\\"hi\\\"\" "
                "eq=\"a=b\""),
            std::string::npos)
      << out_.str();
}

TEST_F(LoggingTest, KvOnlyEventHasNoLeadingSpace) {
  LOG(info).kv("round", 1);
  EXPECT_NE(out_.str().find("INFO: round=1\n"), std::string::npos) << out_.str();
}

TEST_F(LoggingTest, InertBelowThresholdFormatsNothing) {
  LogConfig::instance().set_threshold(LogLevel::kWarn);
  LOG(info).msg("invisible").kv("round", 1);
  LOG(debug).msg("also invisible");
  EXPECT_TRUE(out_.str().empty());
  LogConfig::instance().set_threshold(LogLevel::kOff);
  LOG(error).msg("off silences errors too");
  EXPECT_TRUE(out_.str().empty());
}

TEST_F(LoggingTest, LoggerEventShimUsesLoggerName) {
  Logger log("ShimName");
  log.event(LogLevel::kInfo).msg("via shim").kv("k", "v");
  EXPECT_NE(out_.str().find(" - ShimName - INFO: via shim k=v\n"),
            std::string::npos)
      << out_.str();
}

}  // namespace
}  // namespace cppflare::core
