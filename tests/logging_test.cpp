#include "core/logging.h"

#include <gtest/gtest.h>

#include <regex>
#include <sstream>

namespace cppflare::core {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LogConfig::instance().set_sink(&out_);
    LogConfig::instance().set_threshold(LogLevel::kDebug);
  }
  void TearDown() override {
    LogConfig::instance().set_sink(nullptr);
    LogConfig::instance().set_threshold(LogLevel::kInfo);
  }
  std::ostringstream out_;
};

TEST_F(LoggingTest, NvflareStyleFormat) {
  Logger log("CiBertLearner");
  log.info("Local epoch site-7: 1/10");
  // "2023-04-07 06:33:33,911 - CiBertLearner - INFO: Local epoch site-7: 1/10"
  const std::regex pattern(
      R"(^\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2},\d{3} - CiBertLearner - INFO: Local epoch site-7: 1/10\n$)");
  EXPECT_TRUE(std::regex_match(out_.str(), pattern)) << out_.str();
}

TEST_F(LoggingTest, ThresholdSuppressesLowerLevels) {
  LogConfig::instance().set_threshold(LogLevel::kWarn);
  Logger log("X");
  log.debug("d");
  log.info("i");
  EXPECT_TRUE(out_.str().empty());
  log.warn("w");
  log.error("e");
  EXPECT_NE(out_.str().find("WARN: w"), std::string::npos);
  EXPECT_NE(out_.str().find("ERROR: e"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  LogConfig::instance().set_threshold(LogLevel::kOff);
  Logger log("X");
  log.error("nope");
  EXPECT_TRUE(out_.str().empty());
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, TimestampShape) {
  const std::string ts = timestamp_now();
  const std::regex pattern(R"(^\d{4}-\d{2}-\d{2} \d{2}:\d{2}:\d{2},\d{3}$)");
  EXPECT_TRUE(std::regex_match(ts, pattern)) << ts;
}

TEST_F(LoggingTest, MultipleLinesAppend) {
  Logger log("A");
  log.info("one");
  log.info("two");
  const std::string s = out_.str();
  EXPECT_NE(s.find("one\n"), std::string::npos);
  EXPECT_NE(s.find("two\n"), std::string::npos);
}

}  // namespace
}  // namespace cppflare::core
