#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/module.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace cppflare::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(LinearLayer, ShapesAndParamNames) {
  core::Rng rng(1);
  Linear lin(4, 3, rng);
  const auto named = lin.named_parameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[0].second.shape(), (Shape{3, 4}));
  EXPECT_EQ(named[1].first, "bias");
  EXPECT_EQ(named[1].second.shape(), (Shape{3}));
  EXPECT_EQ(lin.num_parameters(), 3 * 4 + 3);

  Tensor x = Tensor::zeros({5, 4});
  EXPECT_EQ(lin.forward(x).shape(), (Shape{5, 3}));
}

TEST(LinearLayer, NoBiasVariant) {
  core::Rng rng(2);
  Linear lin(4, 3, rng, /*bias=*/false);
  EXPECT_EQ(lin.named_parameters().size(), 1u);
  EXPECT_EQ(lin.num_parameters(), 12);
}

TEST(EmbeddingLayer, LookupShape) {
  core::Rng rng(3);
  Embedding emb(10, 6, rng);
  EXPECT_EQ(emb.forward({1, 2, 3}).shape(), (Shape{3, 6}));
  EXPECT_EQ(emb.num_parameters(), 60);
}

TEST(LayerNormLayer, InitializedToIdentityAffine) {
  LayerNorm ln(4);
  const auto named = ln.named_parameters();
  ASSERT_EQ(named.size(), 2u);
  for (float v : named[0].second.vec()) EXPECT_EQ(v, 1.0f);  // gamma
  for (float v : named[1].second.vec()) EXPECT_EQ(v, 0.0f);  // beta
}

TEST(ModuleTree, DottedNamesFromNesting) {
  core::Rng rng(4);
  struct Mlp : Module {
    explicit Mlp(core::Rng& rng) {
      fc1 = register_module<Linear>("fc1", 4, 8, rng);
      fc2 = register_module<Linear>("fc2", 8, 2, rng);
    }
    std::shared_ptr<Linear> fc1, fc2;
  } mlp(rng);
  const auto named = mlp.named_parameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "fc1.weight");
  EXPECT_EQ(named[1].first, "fc1.bias");
  EXPECT_EQ(named[2].first, "fc2.weight");
  EXPECT_EQ(named[3].first, "fc2.bias");
}

TEST(ModuleStateDict, RoundTripRestoresValues) {
  core::Rng rng(5);
  Linear a(3, 2, rng), b(3, 2, rng);
  const StateDict dict = a.state_dict();
  b.load_state_dict(dict);
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].vec(), pb[i].vec());
  }
}

TEST(ModuleStateDict, LoadValidatesShapeAndCoverage) {
  core::Rng rng(6);
  Linear a(3, 2, rng);
  Linear wrong_shape(4, 2, rng);
  EXPECT_THROW(a.load_state_dict(wrong_shape.state_dict()), Error);
  StateDict empty;
  EXPECT_THROW(a.load_state_dict(empty), Error);
}

TEST(ModuleTraining, ModePropagatesToChildren) {
  core::Rng rng(7);
  struct Outer : Module {
    explicit Outer(core::Rng& rng) {
      inner = register_module<Linear>("inner", 2, 2, rng);
    }
    std::shared_ptr<Linear> inner;
  } outer(rng);
  EXPECT_TRUE(outer.training());
  outer.set_training(false);
  EXPECT_FALSE(outer.training());
  EXPECT_FALSE(outer.inner->training());
}

TEST(ModuleGrads, ZeroGradClearsAll) {
  core::Rng rng(8);
  Linear lin(2, 2, rng);
  Tensor x = Tensor::from_data({1, 2}, {1, 1});
  tensor::sum_all(lin.forward(x)).backward();
  bool any_nonzero = false;
  for (auto& p : lin.parameters()) {
    for (float g : p.impl()->grad) any_nonzero = any_nonzero || g != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
  lin.zero_grad();
  for (auto& p : lin.parameters()) {
    for (float g : p.impl()->grad) EXPECT_EQ(g, 0.0f);
  }
}

TEST(ModuleRegistration, RejectsNonGradParameter) {
  struct Bad : Module {
    Bad() { register_parameter("w", Tensor::zeros({2}, /*requires_grad=*/false)); }
  };
  EXPECT_THROW(Bad{}, Error);
}

TEST(Initializers, NormalRoughStatistics) {
  core::Rng rng(9);
  Tensor t = Tensor::zeros({10000}, true);
  init_normal(t, rng, 0.02f);
  double mean = 0, var = 0;
  for (float v : t.vec()) mean += v;
  mean /= 10000;
  for (float v : t.vec()) var += (v - mean) * (v - mean);
  var /= 10000;
  EXPECT_NEAR(mean, 0.0, 0.002);
  EXPECT_NEAR(std::sqrt(var), 0.02, 0.004);
}

TEST(Initializers, UniformRespectsBound) {
  core::Rng rng(10);
  Tensor t = Tensor::zeros({1000}, true);
  init_uniform(t, rng, 0.1f);
  for (float v : t.vec()) {
    EXPECT_GE(v, -0.1f);
    EXPECT_LE(v, 0.1f);
  }
}

}  // namespace
}  // namespace cppflare::nn
