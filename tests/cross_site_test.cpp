// Tests for cross-site model evaluation and FedProx local training.
#include <gtest/gtest.h>

#include "core/logging.h"
#include "models/lstm_classifier.h"
#include "train/cross_site.h"
#include "train/trainer.h"

namespace cppflare::train {
namespace {

using tensor::Tensor;

models::ModelConfig tiny_config() {
  models::ModelConfig c = models::ModelConfig::lstm(16, 8);
  c.hidden = 8;
  c.layers = 1;
  c.dropout = 0.0f;
  return c;
}

/// Dataset where every label equals `label` and ids are fixed.
data::Dataset constant_dataset(std::int64_t n, std::int64_t label) {
  data::Dataset d;
  for (std::int64_t i = 0; i < n; ++i) {
    data::Sample s;
    s.ids = {2, 6, 7, 8, 0, 0, 0, 0};
    s.length = 4;
    s.label = label;
    d.add(s);
  }
  return d;
}

/// A state dict for tiny_config whose head strongly predicts `cls`.
nn::StateDict biased_model(std::int64_t cls, std::uint64_t seed) {
  core::Rng rng(seed);
  auto model = models::make_classifier(tiny_config(), rng);
  nn::StateDict dict = model->state_dict();
  auto& bias = dict.at("head.bias").values;
  bias[static_cast<std::size_t>(cls)] = 50.0f;
  bias[static_cast<std::size_t>(1 - cls)] = -50.0f;
  return dict;
}

TEST(CrossSiteEval, MatrixShapeAndValues) {
  const std::vector<std::pair<std::string, nn::StateDict>> models_list = {
      {"always-0", biased_model(0, 1)},
      {"always-1", biased_model(1, 2)},
  };
  const std::vector<std::pair<std::string, data::Dataset>> sites = {
      {"site-a", constant_dataset(8, 0)},
      {"site-b", constant_dataset(8, 1)},
  };
  const CrossSiteResult result =
      cross_site_evaluate(tiny_config(), models_list, sites, 4);

  ASSERT_EQ(result.model_names.size(), 2u);
  ASSERT_EQ(result.site_names.size(), 2u);
  ASSERT_EQ(result.matrix.size(), 2u);
  // always-0 is perfect on site-a (labels 0) and useless on site-b.
  EXPECT_DOUBLE_EQ(result.matrix[0][0].accuracy, 1.0);
  EXPECT_DOUBLE_EQ(result.matrix[0][1].accuracy, 0.0);
  EXPECT_DOUBLE_EQ(result.matrix[1][0].accuracy, 0.0);
  EXPECT_DOUBLE_EQ(result.matrix[1][1].accuracy, 1.0);
}

TEST(CrossSiteEval, BestModelByMeanAccuracy) {
  const std::vector<std::pair<std::string, nn::StateDict>> models_list = {
      {"always-0", biased_model(0, 3)},
      {"always-1", biased_model(1, 4)},
  };
  // Two of three sites carry label 1 -> always-1 wins on mean accuracy.
  const std::vector<std::pair<std::string, data::Dataset>> sites = {
      {"s1", constant_dataset(8, 1)},
      {"s2", constant_dataset(8, 1)},
      {"s3", constant_dataset(8, 0)},
  };
  const CrossSiteResult result =
      cross_site_evaluate(tiny_config(), models_list, sites, 4);
  EXPECT_EQ(result.best_model_index(), 1u);
}

TEST(CrossSiteEval, TableRendering) {
  const std::vector<std::pair<std::string, nn::StateDict>> models_list = {
      {"global", biased_model(0, 5)}};
  const std::vector<std::pair<std::string, data::Dataset>> sites = {
      {"site-1", constant_dataset(4, 0)}};
  const std::string table =
      cross_site_evaluate(tiny_config(), models_list, sites, 4).to_table();
  EXPECT_NE(table.find("global"), std::string::npos);
  EXPECT_NE(table.find("site-1"), std::string::npos);
  EXPECT_NE(table.find("100.0%"), std::string::npos);
}

TEST(CrossSiteEval, ValidatesInputs) {
  EXPECT_THROW(cross_site_evaluate(tiny_config(), {}, {}), Error);
}

TEST(FedProx, ProximalGradientPullsTowardReference) {
  // One step of training with a huge mu must keep weights closer to the
  // reference than training without it.
  core::Rng rng(6);
  const models::ModelConfig config = tiny_config();

  data::Dataset train;
  core::Rng data_rng(7);
  for (int i = 0; i < 64; ++i) {
    data::Sample s;
    s.ids = {2, 0, 0, 0, 0, 0, 0, 0};
    s.length = 8;
    for (std::int64_t t = 1; t < 8; ++t) s.ids[t] = 5 + data_rng.uniform_int(0, 9);
    s.label = data_rng.bernoulli(0.5) ? 1 : 0;
    train.add(s);
  }

  auto distance_after_training = [&](double mu) {
    core::Rng init(8);
    auto model = models::make_classifier(config, init);
    const nn::StateDict reference = model->state_dict();
    TrainOptions opts;
    opts.epochs = 1;
    opts.batch_size = 16;
    opts.lr = 1e-2;
    opts.seed = 9;
    ClassifierTrainer trainer(model, opts);
    if (mu > 0) trainer.set_proximal_term(reference, mu);
    for (int e = 0; e < 3; ++e) trainer.train_epoch(train);
    // L2 distance to the reference.
    double dist = 0;
    for (const auto& [name, t] : model->named_parameters()) {
      const auto& ref = reference.at(name).values;
      for (std::size_t i = 0; i < ref.size(); ++i) {
        const double d = t.vec()[i] - ref[i];
        dist += d * d;
      }
    }
    return dist;
  };

  const double plain = distance_after_training(0.0);
  const double prox = distance_after_training(1.0);
  EXPECT_LT(prox, plain * 0.8);
}

TEST(FedProx, ZeroMuMatchesPlainTraining) {
  core::Rng rng(10);
  const models::ModelConfig config = tiny_config();
  data::Dataset train = constant_dataset(32, 1);

  auto run = [&](bool set_zero_prox) {
    core::Rng init(11);
    auto model = models::make_classifier(config, init);
    TrainOptions opts;
    opts.epochs = 1;
    opts.batch_size = 8;
    opts.lr = 1e-2;
    opts.seed = 12;
    ClassifierTrainer trainer(model, opts);
    if (set_zero_prox) trainer.set_proximal_term(model->state_dict(), 0.0);
    trainer.train_epoch(train);
    return model->state_dict();
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace cppflare::train
