// Tests for the framework extensions: best-model selection and secure
// aggregation by pairwise masking.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <thread>

#include "core/logging.h"
#include "flare/model_selector.h"
#include "flare/secure_agg.h"
#include "flare/server.h"
#include "flare/simulator.h"

namespace cppflare::flare {
namespace {

nn::StateDict dict_of(std::vector<float> w) {
  nn::StateDict d;
  d.insert("w", {{static_cast<std::int64_t>(w.size())}, std::move(w)});
  return d;
}

RoundMetrics metrics_with(double acc, double loss) {
  RoundMetrics m;
  m.valid_acc = acc;
  m.valid_loss = loss;
  return m;
}

class QuietLogs : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
  }
  void TearDown() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }
};

using BestModelSelectorTest = QuietLogs;
using SecureAggTest = QuietLogs;

TEST_F(BestModelSelectorTest, KeepsHighestAccuracyRound) {
  BestModelSelector selector;
  EXPECT_FALSE(selector.has_best());
  selector.observe(0, dict_of({1}), metrics_with(0.6, 1.0));
  selector.observe(1, dict_of({2}), metrics_with(0.8, 0.9));
  selector.observe(2, dict_of({3}), metrics_with(0.7, 0.5));
  ASSERT_TRUE(selector.has_best());
  EXPECT_EQ(selector.best_round(), 1);
  EXPECT_FLOAT_EQ(selector.best_model().at("w").values[0], 2.0f);
  EXPECT_DOUBLE_EQ(selector.best_metrics().valid_acc, 0.8);
}

TEST_F(BestModelSelectorTest, MinLossCriterion) {
  BestModelSelector selector(BestModelSelector::Criterion::kMinValidLoss);
  selector.observe(0, dict_of({1}), metrics_with(0.9, 1.0));
  selector.observe(1, dict_of({2}), metrics_with(0.5, 0.2));
  EXPECT_EQ(selector.best_round(), 1);
}

TEST_F(BestModelSelectorTest, TieKeepsEarlierRound) {
  BestModelSelector selector;
  selector.observe(0, dict_of({1}), metrics_with(0.7, 1.0));
  selector.observe(1, dict_of({2}), metrics_with(0.7, 1.0));
  EXPECT_EQ(selector.best_round(), 0);
}

TEST_F(BestModelSelectorTest, ThrowsBeforeAnyRound) {
  BestModelSelector selector;
  EXPECT_THROW(selector.best_model(), Error);
}

TEST_F(BestModelSelectorTest, AttachObservesSimulatedRun) {
  // Learner whose reported valid_acc peaks mid-run; the selector must keep
  // the peak round's model, not the final one.
  class PeakLearner : public Learner {
   public:
    explicit PeakLearner(std::string site) : site_(std::move(site)) {}
    Dxo train(const Dxo& global, const FLContext& ctx) override {
      nn::StateDict updated = global.data();
      updated.at("w").values[0] = static_cast<float>(ctx.current_round + 1);
      Dxo update(DxoKind::kWeights, updated);
      update.set_meta_int(Dxo::kMetaNumSamples, 10);
      update.set_meta_double(Dxo::kMetaTrainLoss, 1.0);
      // Accuracy profile: 0.5, 0.9, 0.6, 0.4 over four rounds.
      const double profile[] = {0.5, 0.9, 0.6, 0.4};
      update.set_meta_double(Dxo::kMetaValidAcc, profile[ctx.current_round % 4]);
      return update;
    }
    std::string site_name() const override { return site_; }

   private:
    std::string site_;
  };

  SimulatorConfig config;
  config.num_clients = 2;
  config.num_rounds = 4;
  SimulatorRunner runner(config, dict_of({0.0f}),
                         std::make_unique<FedAvgAggregator>(true),
                         [](std::int64_t, const std::string& name) {
                           return std::make_shared<PeakLearner>(name);
                         });
  BestModelSelector selector;
  selector.attach(runner.server());
  const SimulationResult result = runner.run();
  ASSERT_FALSE(result.aborted);
  EXPECT_EQ(selector.best_round(), 1);
  EXPECT_FLOAT_EQ(selector.best_model().at("w").values[0], 2.0f);
}

TEST(EventBusTest, HandlersRunInSubscriptionOrder) {
  EventBus bus;
  std::vector<int> order;
  bus.subscribe(EventType::kRoundDone, [&](const FLContext&) { order.push_back(1); });
  bus.subscribe(EventType::kRoundDone, [&](const FLContext&) { order.push_back(2); });
  FLContext ctx;
  bus.fire(EventType::kRoundDone, ctx);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventBusTest, FireWithoutSubscribersIsNoop) {
  EventBus bus;
  FLContext ctx;
  bus.fire(EventType::kEndRun, ctx);  // must not crash
  SUCCEED();
}

TEST(EventBusTest, HandlersSeeContextFields) {
  EventBus bus;
  std::int64_t seen_round = -1;
  bus.subscribe(EventType::kRoundStarted,
                [&](const FLContext& ctx) { seen_round = ctx.current_round; });
  FLContext ctx;
  ctx.current_round = 7;
  bus.fire(EventType::kRoundStarted, ctx);
  EXPECT_EQ(seen_round, 7);
}

TEST(EventBusTest, EventTypeNames) {
  EXPECT_STREQ(event_type_name(EventType::kStartRun), "START_RUN");
  EXPECT_STREQ(event_type_name(EventType::kBeforeAggregation),
               "BEFORE_AGGREGATION");
  EXPECT_STREQ(event_type_name(EventType::kEndRun), "END_RUN");
}

TEST_F(SecureAggTest, PairKeysSymmetricAndDistinct) {
  SecureAggregationDealer dealer("proj", 5);
  EXPECT_EQ(dealer.pair_key("site-1", "site-2"), dealer.pair_key("site-2", "site-1"));
  EXPECT_NE(dealer.pair_key("site-1", "site-2"), dealer.pair_key("site-1", "site-3"));
  EXPECT_THROW(dealer.pair_key("site-1", "site-1"), Error);
  SecureAggregationDealer other("proj", 6);
  EXPECT_NE(dealer.pair_key("site-1", "site-2"), other.pair_key("site-1", "site-2"));
}

TEST_F(SecureAggTest, MasksCancelAcrossAllSites) {
  const std::vector<std::string> sites = {"site-1", "site-2", "site-3"};
  SecureAggregationDealer dealer("proj", 11);
  FLContext ctx;
  ctx.current_round = 2;

  const std::vector<float> x1 = {1.0f, 2.0f}, x2 = {3.0f, -1.0f}, x3 = {0.5f, 0.5f};
  std::vector<std::vector<float>> masked;
  for (const auto& [site, values] :
       {std::pair{std::string("site-1"), x1}, {std::string("site-2"), x2},
        {std::string("site-3"), x3}}) {
    Dxo dxo(DxoKind::kWeights, dict_of(values));
    SecureAggMaskFilter filter(site, sites, dealer);
    filter.process(dxo, ctx);
    masked.push_back(dxo.data().at("w").values);
  }
  // Each masked update differs from the raw one...
  EXPECT_NE(masked[0], x1);
  // ...and the mod-2^32 word sum decodes to *exactly* the raw sum: the
  // inputs sit on the 2^-16 fixed-point grid, and modular addition cancels
  // every mask bit-for-bit (the float path's EXPECT_NEAR era is over).
  for (int j = 0; j < 2; ++j) {
    std::uint32_t word = 0;
    for (const auto& m : masked) word += std::bit_cast<std::uint32_t>(m[j]);
    const float decoded = static_cast<float>(
        static_cast<double>(static_cast<std::int32_t>(word)) / 65536.0);
    EXPECT_EQ(decoded, x1[j] + x2[j] + x3[j]);
  }
}

TEST_F(SecureAggTest, UnmaskShareRemovesDroppedSitesMasks) {
  // site-3 submits nothing; the survivors' masks against it no longer
  // cancel. Subtracting each survivor's revealed mask *sum* against the
  // dropped set must restore the exact survivor aggregate.
  const std::vector<std::string> sites = {"site-1", "site-2", "site-3"};
  SecureAggregationDealer dealer("proj", 21);
  FLContext ctx;
  ctx.current_round = 3;

  const std::vector<float> x1 = {1.25f, -2.0f}, x2 = {0.5f, 4.0f};
  SecureAggMaskFilter f1("site-1", sites, dealer);
  SecureAggMaskFilter f2("site-2", sites, dealer);
  Dxo d1(DxoKind::kWeights, dict_of(x1));
  Dxo d2(DxoKind::kWeights, dict_of(x2));
  f1.process(d1, ctx);
  f2.process(d2, ctx);

  const Dxo s1 = f1.unmask_share({"site-3"}, ctx.current_round);
  const Dxo s2 = f2.unmask_share({"site-3"}, ctx.current_round);
  for (int j = 0; j < 2; ++j) {
    std::uint32_t word =
        std::bit_cast<std::uint32_t>(d1.data().at("w").values[j]) +
        std::bit_cast<std::uint32_t>(d2.data().at("w").values[j]);
    word -= std::bit_cast<std::uint32_t>(s1.data().at("w").values[j]);
    word -= std::bit_cast<std::uint32_t>(s2.data().at("w").values[j]);
    const float decoded = static_cast<float>(
        static_cast<double>(static_cast<std::int32_t>(word)) / 65536.0);
    EXPECT_EQ(decoded, x1[j] + x2[j]);
  }
}

TEST_F(SecureAggTest, UnmaskShareGuards) {
  const std::vector<std::string> sites = {"site-1", "site-2"};
  SecureAggregationDealer dealer("proj", 22);
  SecureAggMaskFilter filter("site-1", sites, dealer);
  // Before any masked upload there is no shape skeleton to draw against.
  EXPECT_THROW(filter.unmask_share({"site-2"}, 0), Error);
  FLContext ctx;
  Dxo d(DxoKind::kWeights, dict_of({1.0f}));
  filter.process(d, ctx);
  // Unknown names (including self) are ignored: the share is all zeros.
  const Dxo share = filter.unmask_share({"site-1", "nobody"}, 0);
  EXPECT_EQ(share.data().at("w").values[0], 0.0f);
}

TEST_F(SecureAggTest, MasksDifferAcrossRounds) {
  const std::vector<std::string> sites = {"site-1", "site-2"};
  SecureAggregationDealer dealer("proj", 12);
  SecureAggMaskFilter filter("site-1", sites, dealer);
  FLContext r0, r1;
  r0.current_round = 0;
  r1.current_round = 1;
  Dxo a(DxoKind::kWeights, dict_of({0, 0, 0, 0}));
  Dxo b(DxoKind::kWeights, dict_of({0, 0, 0, 0}));
  filter.process(a, r0);
  filter.process(b, r1);
  EXPECT_NE(a.data().at("w").values, b.data().at("w").values);
}

TEST_F(SecureAggTest, ValidatesParticipants) {
  SecureAggregationDealer dealer("proj", 13);
  EXPECT_THROW(SecureAggMaskFilter("site-9", {"site-1", "site-2"}, dealer), Error);
  EXPECT_THROW(SecureAggMaskFilter("site-1", {"site-1"}, dealer), Error);
}

/// Learner whose update is a constant grid-exact value per site — the
/// masked fixed-point pipeline must reproduce plain FedAvg bit-for-bit.
class ConstLearner : public Learner {
 public:
  ConstLearner(std::string site, float v, std::int64_t samples = 10)
      : site_(std::move(site)), v_(v), samples_(samples) {}
  Dxo train(const Dxo& global, const FLContext&) override {
    nn::StateDict d = global.data();
    for (auto& [k, blob] : d.entries()) {
      for (float& x : blob.values) x = v_;
    }
    Dxo update(DxoKind::kWeights, d);
    update.set_meta_int(Dxo::kMetaNumSamples, samples_);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float v_;
  std::int64_t samples_;
};

TEST_F(SecureAggTest, EndToEndFederationBitwiseEqualUnderMasking) {
  // Uniform FedAvg over grid-exact constant learners: the masked run's
  // published aggregate must be *bitwise* equal to the unmasked run's —
  // quantized modular masking cancels exactly, and MaskedFedAvgAggregator
  // shares FedAvg's scalar tail.
  auto run = [&](bool masked) {
    SimulatorConfig config;
    config.job_id = "secure_demo";
    config.num_clients = 4;
    config.num_rounds = 2;
    config.secure_agg.enabled = masked;
    config.secure_agg.dealer_seed = 77;
    SimulatorRunner runner(config, dict_of({0.0f, 0.0f}),
                           std::make_unique<FedAvgAggregator>(/*weighted=*/false),
                           [](std::int64_t i, const std::string& name) {
                             return std::make_shared<ConstLearner>(
                                 name, static_cast<float>(i));
                           });
    const SimulationResult result = runner.run();
    EXPECT_FALSE(result.aborted) << result.abort_reason;
    return result.final_model;
  };

  const nn::StateDict clean = run(false);
  const nn::StateDict secured = run(true);
  ASSERT_TRUE(clean.congruent_with(secured));
  EXPECT_EQ(clean.at("w").values, secured.at("w").values);
}

TEST_F(SecureAggTest, WeightedAggregationUnderMaskingRejected) {
  SimulatorConfig config;
  config.num_clients = 2;
  config.secure_agg.enabled = true;
  auto factory = [](std::int64_t i, const std::string& name) {
    return std::make_shared<ConstLearner>(name, static_cast<float>(i));
  };
  EXPECT_THROW(SimulatorRunner(config, dict_of({0.0f}),
                               std::make_unique<FedAvgAggregator>(/*weighted=*/true),
                               factory),
               ConfigError);
  // Sampling is equally incompatible: a sampled-out site's masks never
  // cancel (the check lives in the server's constructor).
  SimulatorConfig sampled;
  sampled.num_clients = 4;
  sampled.clients_per_round = 2;
  sampled.secure_agg.enabled = true;
  EXPECT_THROW(SimulatorRunner(sampled, dict_of({0.0f}),
                               std::make_unique<FedAvgAggregator>(false), factory),
               ConfigError);
}

TEST_F(SecureAggTest, PreScaledMaskingMatchesWeightedFedAvg) {
  // The supported weighted path under masking: each site pre-scales by
  // num_samples * num_sites / total_samples. With power-of-two factors the
  // masked uniform mean is bitwise-equal to server-side weighted FedAvg.
  const std::int64_t samples[] = {1, 1, 2, 4};  // total 8, factors s*4/8
  auto factory = [&](std::int64_t i, const std::string& name) {
    return std::make_shared<ConstLearner>(name, static_cast<float>(i),
                                          samples[i]);
  };

  SimulatorConfig weighted;
  weighted.num_clients = 4;
  weighted.num_rounds = 2;
  SimulatorRunner weighted_runner(weighted, dict_of({0.0f}),
                                  std::make_unique<FedAvgAggregator>(true),
                                  factory);
  const nn::StateDict want = weighted_runner.run().final_model;

  SimulatorConfig masked;
  masked.num_clients = 4;
  masked.num_rounds = 2;
  masked.secure_agg.enabled = true;
  masked.secure_agg.pre_scale = true;
  masked.secure_agg.total_samples = 8;
  SimulatorRunner masked_runner(masked, dict_of({0.0f}),
                                std::make_unique<FedAvgAggregator>(false),
                                factory);
  const nn::StateDict got = masked_runner.run().final_model;
  EXPECT_EQ(want.at("w").values, got.at("w").values);
}

}  // namespace
}  // namespace cppflare::flare
