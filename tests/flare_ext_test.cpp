// Tests for the framework extensions: best-model selection and secure
// aggregation by pairwise masking.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "core/logging.h"
#include "flare/model_selector.h"
#include "flare/secure_agg.h"
#include "flare/server.h"
#include "flare/simulator.h"

namespace cppflare::flare {
namespace {

nn::StateDict dict_of(std::vector<float> w) {
  nn::StateDict d;
  d.insert("w", {{static_cast<std::int64_t>(w.size())}, std::move(w)});
  return d;
}

RoundMetrics metrics_with(double acc, double loss) {
  RoundMetrics m;
  m.valid_acc = acc;
  m.valid_loss = loss;
  return m;
}

class QuietLogs : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
  }
  void TearDown() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }
};

using BestModelSelectorTest = QuietLogs;
using SecureAggTest = QuietLogs;

TEST_F(BestModelSelectorTest, KeepsHighestAccuracyRound) {
  BestModelSelector selector;
  EXPECT_FALSE(selector.has_best());
  selector.observe(0, dict_of({1}), metrics_with(0.6, 1.0));
  selector.observe(1, dict_of({2}), metrics_with(0.8, 0.9));
  selector.observe(2, dict_of({3}), metrics_with(0.7, 0.5));
  ASSERT_TRUE(selector.has_best());
  EXPECT_EQ(selector.best_round(), 1);
  EXPECT_FLOAT_EQ(selector.best_model().at("w").values[0], 2.0f);
  EXPECT_DOUBLE_EQ(selector.best_metrics().valid_acc, 0.8);
}

TEST_F(BestModelSelectorTest, MinLossCriterion) {
  BestModelSelector selector(BestModelSelector::Criterion::kMinValidLoss);
  selector.observe(0, dict_of({1}), metrics_with(0.9, 1.0));
  selector.observe(1, dict_of({2}), metrics_with(0.5, 0.2));
  EXPECT_EQ(selector.best_round(), 1);
}

TEST_F(BestModelSelectorTest, TieKeepsEarlierRound) {
  BestModelSelector selector;
  selector.observe(0, dict_of({1}), metrics_with(0.7, 1.0));
  selector.observe(1, dict_of({2}), metrics_with(0.7, 1.0));
  EXPECT_EQ(selector.best_round(), 0);
}

TEST_F(BestModelSelectorTest, ThrowsBeforeAnyRound) {
  BestModelSelector selector;
  EXPECT_THROW(selector.best_model(), Error);
}

TEST_F(BestModelSelectorTest, AttachObservesSimulatedRun) {
  // Learner whose reported valid_acc peaks mid-run; the selector must keep
  // the peak round's model, not the final one.
  class PeakLearner : public Learner {
   public:
    explicit PeakLearner(std::string site) : site_(std::move(site)) {}
    Dxo train(const Dxo& global, const FLContext& ctx) override {
      nn::StateDict updated = global.data();
      updated.at("w").values[0] = static_cast<float>(ctx.current_round + 1);
      Dxo update(DxoKind::kWeights, updated);
      update.set_meta_int(Dxo::kMetaNumSamples, 10);
      update.set_meta_double(Dxo::kMetaTrainLoss, 1.0);
      // Accuracy profile: 0.5, 0.9, 0.6, 0.4 over four rounds.
      const double profile[] = {0.5, 0.9, 0.6, 0.4};
      update.set_meta_double(Dxo::kMetaValidAcc, profile[ctx.current_round % 4]);
      return update;
    }
    std::string site_name() const override { return site_; }

   private:
    std::string site_;
  };

  SimulatorConfig config;
  config.num_clients = 2;
  config.num_rounds = 4;
  SimulatorRunner runner(config, dict_of({0.0f}),
                         std::make_unique<FedAvgAggregator>(true),
                         [](std::int64_t, const std::string& name) {
                           return std::make_shared<PeakLearner>(name);
                         });
  BestModelSelector selector;
  selector.attach(runner.server());
  const SimulationResult result = runner.run();
  ASSERT_FALSE(result.aborted);
  EXPECT_EQ(selector.best_round(), 1);
  EXPECT_FLOAT_EQ(selector.best_model().at("w").values[0], 2.0f);
}

TEST(EventBusTest, HandlersRunInSubscriptionOrder) {
  EventBus bus;
  std::vector<int> order;
  bus.subscribe(EventType::kRoundDone, [&](const FLContext&) { order.push_back(1); });
  bus.subscribe(EventType::kRoundDone, [&](const FLContext&) { order.push_back(2); });
  FLContext ctx;
  bus.fire(EventType::kRoundDone, ctx);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventBusTest, FireWithoutSubscribersIsNoop) {
  EventBus bus;
  FLContext ctx;
  bus.fire(EventType::kEndRun, ctx);  // must not crash
  SUCCEED();
}

TEST(EventBusTest, HandlersSeeContextFields) {
  EventBus bus;
  std::int64_t seen_round = -1;
  bus.subscribe(EventType::kRoundStarted,
                [&](const FLContext& ctx) { seen_round = ctx.current_round; });
  FLContext ctx;
  ctx.current_round = 7;
  bus.fire(EventType::kRoundStarted, ctx);
  EXPECT_EQ(seen_round, 7);
}

TEST(EventBusTest, EventTypeNames) {
  EXPECT_STREQ(event_type_name(EventType::kStartRun), "START_RUN");
  EXPECT_STREQ(event_type_name(EventType::kBeforeAggregation),
               "BEFORE_AGGREGATION");
  EXPECT_STREQ(event_type_name(EventType::kEndRun), "END_RUN");
}

TEST_F(SecureAggTest, PairKeysSymmetricAndDistinct) {
  SecureAggregationDealer dealer("proj", 5);
  EXPECT_EQ(dealer.pair_key("site-1", "site-2"), dealer.pair_key("site-2", "site-1"));
  EXPECT_NE(dealer.pair_key("site-1", "site-2"), dealer.pair_key("site-1", "site-3"));
  EXPECT_THROW(dealer.pair_key("site-1", "site-1"), Error);
  SecureAggregationDealer other("proj", 6);
  EXPECT_NE(dealer.pair_key("site-1", "site-2"), other.pair_key("site-1", "site-2"));
}

TEST_F(SecureAggTest, MasksCancelAcrossAllSites) {
  const std::vector<std::string> sites = {"site-1", "site-2", "site-3"};
  SecureAggregationDealer dealer("proj", 11);
  FLContext ctx;
  ctx.current_round = 2;

  const std::vector<float> x1 = {1.0f, 2.0f}, x2 = {3.0f, -1.0f}, x3 = {0.5f, 0.5f};
  std::vector<std::vector<float>> masked;
  for (const auto& [site, values] :
       {std::pair{std::string("site-1"), x1}, {std::string("site-2"), x2},
        {std::string("site-3"), x3}}) {
    Dxo dxo(DxoKind::kWeights, dict_of(values));
    SecureAggMaskFilter filter(site, sites, dealer);
    filter.process(dxo, ctx);
    masked.push_back(dxo.data().at("w").values);
  }
  // Each masked update differs from the raw one...
  EXPECT_NE(masked[0], x1);
  // ...but the sum is exactly preserved (masks cancel pairwise).
  for (int j = 0; j < 2; ++j) {
    const float masked_sum = masked[0][j] + masked[1][j] + masked[2][j];
    const float raw_sum = x1[j] + x2[j] + x3[j];
    EXPECT_NEAR(masked_sum, raw_sum, 1e-3f);
  }
}

TEST_F(SecureAggTest, MasksDifferAcrossRounds) {
  const std::vector<std::string> sites = {"site-1", "site-2"};
  SecureAggregationDealer dealer("proj", 12);
  SecureAggMaskFilter filter("site-1", sites, dealer);
  FLContext r0, r1;
  r0.current_round = 0;
  r1.current_round = 1;
  Dxo a(DxoKind::kWeights, dict_of({0, 0, 0, 0}));
  Dxo b(DxoKind::kWeights, dict_of({0, 0, 0, 0}));
  filter.process(a, r0);
  filter.process(b, r1);
  EXPECT_NE(a.data().at("w").values, b.data().at("w").values);
}

TEST_F(SecureAggTest, ValidatesParticipants) {
  SecureAggregationDealer dealer("proj", 13);
  EXPECT_THROW(SecureAggMaskFilter("site-9", {"site-1", "site-2"}, dealer), Error);
  EXPECT_THROW(SecureAggMaskFilter("site-1", {"site-1"}, dealer), Error);
}

TEST_F(SecureAggTest, EndToEndFederationUnchangedByMasking) {
  // Uniform FedAvg over constant learners: the aggregate with masking must
  // equal the aggregate without, while each sealed contribution is noise.
  class ConstLearner : public Learner {
   public:
    ConstLearner(std::string site, float v) : site_(std::move(site)), v_(v) {}
    Dxo train(const Dxo& global, const FLContext&) override {
      nn::StateDict d = global.data();
      for (auto& [k, blob] : d.entries()) {
        for (float& x : blob.values) x = v_;
      }
      Dxo update(DxoKind::kWeights, d);
      update.set_meta_int(Dxo::kMetaNumSamples, 10);
      return update;
    }
    std::string site_name() const override { return site_; }

   private:
    std::string site_;
    float v_;
  };

  auto run = [&](bool masked) {
    SimulatorConfig config;
    config.job_id = "secure_demo";
    config.num_clients = 4;
    config.num_rounds = 2;
    SimulatorRunner runner(config, dict_of({0.0f, 0.0f}),
                           std::make_unique<FedAvgAggregator>(/*weighted=*/false),
                           [](std::int64_t i, const std::string& name) {
                             return std::make_shared<ConstLearner>(
                                 name, static_cast<float>(i));
                           });
    if (masked) {
      auto dealer = std::make_shared<SecureAggregationDealer>("secure_demo", 77);
      const std::vector<std::string> all = {"site-1", "site-2", "site-3", "site-4"};
      runner.set_client_customizer([dealer, all](FederatedClient& client) {
        client.outbound_filters().add(std::make_shared<SecureAggMaskFilter>(
            client.site_name(), all, *dealer));
      });
    }
    return runner.run().final_model;
  };

  const nn::StateDict clean = run(false);
  const nn::StateDict secured = run(true);
  ASSERT_TRUE(clean.congruent_with(secured));
  for (std::size_t i = 0; i < clean.at("w").values.size(); ++i) {
    EXPECT_NEAR(clean.at("w").values[i], secured.at("w").values[i], 5e-3f);
  }
}

}  // namespace
}  // namespace cppflare::flare
