#include <gtest/gtest.h>

#include "models/bert.h"
#include "models/lstm_classifier.h"
#include "tensor/ops.h"

namespace cppflare::models {
namespace {

using tensor::Shape;
using tensor::Tensor;

data::Batch tiny_batch(std::int64_t batch, std::int64_t seq, std::int64_t vocab) {
  data::Batch b;
  b.batch_size = batch;
  b.seq_len = seq;
  core::Rng rng(9);
  for (std::int64_t i = 0; i < batch; ++i) {
    b.ids.push_back(data::Vocabulary::kCls);
    for (std::int64_t t = 1; t < seq; ++t) {
      b.ids.push_back(rng.uniform_int(data::Vocabulary::kNumSpecial, vocab - 1));
    }
    b.lengths.push_back(seq - i % 2);  // mix of full and padded rows
    b.labels.push_back(i % 2);
  }
  return b;
}

TEST(ModelConfigTest, TableTwoSpecs) {
  const ModelConfig bert = ModelConfig::bert(1000, 32);
  EXPECT_EQ(bert.hidden, 128);
  EXPECT_EQ(bert.heads, 6);
  EXPECT_EQ(bert.layers, 12);
  EXPECT_EQ(bert.head_dim, 22);  // ceil(128/6)
  EXPECT_EQ(bert.ffn_dim, 512);

  const ModelConfig mini = ModelConfig::bert_mini(1000, 32);
  EXPECT_EQ(mini.hidden, 50);
  EXPECT_EQ(mini.heads, 2);
  EXPECT_EQ(mini.layers, 6);
  EXPECT_EQ(mini.head_dim, 25);

  const ModelConfig lstm = ModelConfig::lstm(1000, 32);
  EXPECT_EQ(lstm.hidden, 128);
  EXPECT_EQ(lstm.layers, 3);
  EXPECT_EQ(lstm.heads, 0);
}

TEST(ModelConfigTest, ByNameLookup) {
  EXPECT_EQ(ModelConfig::by_name("bert", 10, 8).kind, ModelKind::kBert);
  EXPECT_EQ(ModelConfig::by_name("bert-mini", 10, 8).kind, ModelKind::kBertMini);
  EXPECT_EQ(ModelConfig::by_name("lstm", 10, 8).kind, ModelKind::kLstm);
  EXPECT_THROW(ModelConfig::by_name("gpt", 10, 8), ConfigError);
}

ModelConfig tiny_bert(std::int64_t vocab = 30, std::int64_t seq = 8) {
  ModelConfig c = ModelConfig::bert(vocab, seq);
  c.hidden = 16;
  c.heads = 2;
  c.head_dim = 8;
  c.layers = 2;
  c.ffn_dim = 32;
  return c;
}

TEST(BertEncoderTest, EncodeShape) {
  core::Rng rng(1);
  BertEncoder encoder(tiny_bert(), rng);
  data::Batch b = tiny_batch(3, 8, 30);
  core::Rng fw(2);
  Tensor h = encoder.encode(b.ids, b.lengths, b.batch_size, b.seq_len, fw);
  EXPECT_EQ(h.shape(), (Shape{3, 8, 16}));
}

TEST(BertEncoderTest, RejectsOverlongSequences) {
  core::Rng rng(3);
  BertEncoder encoder(tiny_bert(30, 4), rng);
  data::Batch b = tiny_batch(1, 8, 30);
  core::Rng fw(4);
  EXPECT_THROW(encoder.encode(b.ids, b.lengths, 1, 8, fw), ShapeError);
}

TEST(BertEncoderTest, RequiresConfiguredSizes) {
  core::Rng rng(5);
  ModelConfig c = tiny_bert();
  c.vocab_size = 0;
  EXPECT_THROW(BertEncoder(c, rng), ConfigError);
}

TEST(BertPretrainingTest, MlmLossIsLogVocabAtInit) {
  // With random init the MLM head is near-uniform: loss ~= ln(vocab).
  core::Rng rng(6);
  const std::int64_t vocab = 50;
  BertForPretraining model(tiny_bert(vocab), rng);
  model.set_training(false);

  data::Batch b = tiny_batch(4, 8, vocab);
  data::MlmMasker masker(vocab);
  core::Rng mask_rng(7);
  const auto masked = masker.mask_batch(b, mask_rng);
  core::Rng fw(8);
  tensor::NoGradGuard no_grad;
  const Tensor loss = model.mlm_loss(masked, fw);
  EXPECT_NEAR(loss.item(), std::log(static_cast<float>(vocab)), 1.0f);
}

TEST(BertClassifierTest, LogitsShapeAndGradFlow) {
  core::Rng rng(10);
  BertForClassification model(tiny_bert(), rng);
  data::Batch b = tiny_batch(4, 8, 30);
  core::Rng fw(11);
  Tensor logits = model.class_logits(b, fw);
  EXPECT_EQ(logits.shape(), (Shape{4, 2}));
  tensor::cross_entropy(logits, b.labels).backward();
  std::int64_t with_grad = 0;
  for (auto& [name, p] : model.named_parameters()) {
    if (p.impl()->grad.empty()) continue;
    float norm = 0;
    for (float g : p.impl()->grad) norm += g * g;
    if (norm > 0) ++with_grad;
  }
  EXPECT_GT(with_grad, 10);
}

TEST(BertClassifierTest, EncoderTransplantCopiesEncoderOnly) {
  core::Rng rng(12);
  const ModelConfig c = tiny_bert();
  BertForPretraining pretrained(c, rng);
  BertForClassification classifier(c, rng);

  const auto before_head = classifier.state_dict().at("head.weight").values;
  classifier.load_encoder_from(pretrained);

  const nn::StateDict src = pretrained.state_dict();
  const nn::StateDict dst = classifier.state_dict();
  EXPECT_EQ(dst.at("encoder.tok_emb.weight").values,
            src.at("encoder.tok_emb.weight").values);
  EXPECT_EQ(dst.at("head.weight").values, before_head);  // untouched
}

TEST(LstmClassifierTest, LogitsShape) {
  core::Rng rng(13);
  ModelConfig c = ModelConfig::lstm(30, 8);
  c.hidden = 12;  // keep the test fast
  LstmClassifier model(c, rng);
  data::Batch b = tiny_batch(3, 8, 30);
  core::Rng fw(14);
  EXPECT_EQ(model.class_logits(b, fw).shape(), (Shape{3, 2}));
}

TEST(LstmClassifierTest, UsesLastValidTimestepNotPadding) {
  core::Rng rng(15);
  ModelConfig c = ModelConfig::lstm(30, 6);
  c.hidden = 10;
  LstmClassifier model(c, rng);
  model.set_training(false);
  core::Rng fw(16);

  // Two batches identical in the first 3 tokens; the second has garbage in
  // padded positions. With length=3 the logits must match exactly.
  data::Batch b1, b2;
  b1.batch_size = b2.batch_size = 1;
  b1.seq_len = b2.seq_len = 6;
  b1.ids = {2, 7, 9, 0, 0, 0};
  b2.ids = {2, 7, 9, 21, 22, 23};
  b1.lengths = b2.lengths = {3};
  b1.labels = b2.labels = {0};
  Tensor l1 = model.class_logits(b1, fw);
  Tensor l2 = model.class_logits(b2, fw);
  EXPECT_FLOAT_EQ(l1.data()[0], l2.data()[0]);
  EXPECT_FLOAT_EQ(l1.data()[1], l2.data()[1]);
}

TEST(FactoryTest, BuildsMatchingKind) {
  core::Rng rng(17);
  auto bert = make_classifier(tiny_bert(), rng);
  EXPECT_NE(dynamic_cast<BertForClassification*>(bert.get()), nullptr);
  ModelConfig lc = ModelConfig::lstm(30, 8);
  lc.hidden = 8;
  auto lstm = make_classifier(lc, rng);
  EXPECT_NE(dynamic_cast<LstmClassifier*>(lstm.get()), nullptr);
}

TEST(ParameterCounts, TableTwoOrdering) {
  // With the full Table II specs, BERT > BERT-mini and BERT > LSTM head
  // count comparisons reflect the paper's size ordering.
  core::Rng rng(18);
  const std::int64_t vocab = 200, seq = 16;
  BertForClassification bert(ModelConfig::bert(vocab, seq), rng);
  BertForClassification mini(ModelConfig::bert_mini(vocab, seq), rng);
  LstmClassifier lstm(ModelConfig::lstm(vocab, seq), rng);
  EXPECT_GT(bert.num_parameters(), mini.num_parameters());
  EXPECT_GT(bert.num_parameters(), lstm.num_parameters());
  // 12-layer 128-wide transformer lands above 1M parameters.
  EXPECT_GT(bert.num_parameters(), 1000000);
}

TEST(StateDictCompat, FederationRoundTripPreservesBehaviour) {
  // Serialize a classifier's weights, load into a twin, expect identical
  // logits — the property FL depends on.
  core::Rng rng(19);
  const ModelConfig c = tiny_bert();
  BertForClassification a(c, rng), b(c, rng);
  core::ByteWriter w;
  a.state_dict().serialize(w);
  core::ByteReader r(w.bytes());
  b.load_state_dict(nn::StateDict::deserialize(r));
  a.set_training(false);
  b.set_training(false);
  data::Batch batch = tiny_batch(2, 8, 30);
  core::Rng fw1(20), fw2(21);
  Tensor la = a.class_logits(batch, fw1);
  Tensor lb = b.class_logits(batch, fw2);
  for (std::int64_t i = 0; i < la.numel(); ++i) {
    EXPECT_FLOAT_EQ(la.data()[i], lb.data()[i]);
  }
}

}  // namespace
}  // namespace cppflare::models
