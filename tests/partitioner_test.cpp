#include "data/partitioner.h"

#include <gtest/gtest.h>

#include <numeric>

namespace cppflare::data {
namespace {

Dataset make_dataset(std::int64_t n, double positive_rate) {
  Dataset d;
  for (std::int64_t i = 0; i < n; ++i) {
    Sample s;
    s.ids = {i};
    s.length = 1;
    s.label = (i < static_cast<std::int64_t>(positive_rate * n)) ? 1 : 0;
    d.add(s);
  }
  return d;
}

std::int64_t total_size(const std::vector<Dataset>& shards) {
  std::int64_t total = 0;
  for (const auto& s : shards) total += s.size();
  return total;
}

TEST(PaperRatios, MatchSectionIVB1) {
  const auto& r = paper_imbalanced_ratios();
  ASSERT_EQ(r.size(), 8u);
  EXPECT_DOUBLE_EQ(r[0], 0.29);
  EXPECT_DOUBLE_EQ(r[7], 0.02);
  EXPECT_NEAR(std::accumulate(r.begin(), r.end(), 0.0), 1.0, 1e-12);
}

TEST(Partitioner, BalancedSplitEqualSizes) {
  Dataset d = make_dataset(800, 0.2);
  PartitionOptions opts;
  opts.num_clients = 8;
  const auto shards = partition(d, opts);
  ASSERT_EQ(shards.size(), 8u);
  for (const auto& s : shards) EXPECT_EQ(s.size(), 100);
}

TEST(Partitioner, ImbalancedSizesFollowRatios) {
  Dataset d = make_dataset(1000, 0.2);
  PartitionOptions opts;
  opts.size_ratios = paper_imbalanced_ratios();
  opts.num_clients = 8;
  const auto shards = partition(d, opts);
  EXPECT_EQ(shards[0].size(), 290);
  EXPECT_EQ(shards[1].size(), 220);
  EXPECT_EQ(shards[7].size(), 20);
  EXPECT_EQ(total_size(shards), 1000);
}

TEST(Partitioner, EverySampleAssignedExactlyOnce) {
  Dataset d = make_dataset(503, 0.3);  // awkward size forces remainders
  PartitionOptions opts;
  opts.size_ratios = paper_imbalanced_ratios();
  opts.num_clients = 8;
  const auto shards = partition(d, opts);
  std::vector<int> seen(503, 0);
  for (const auto& s : shards) {
    for (std::int64_t i = 0; i < s.size(); ++i) seen[s[i].ids[0]] += 1;
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(Partitioner, LabelSkewAssignsEverythingToo) {
  Dataset d = make_dataset(400, 0.25);
  PartitionOptions opts;
  opts.num_clients = 8;
  opts.label_skew_alpha = 0.2;
  const auto shards = partition(d, opts);
  EXPECT_EQ(total_size(shards), 400);
  std::vector<int> seen(400, 0);
  for (const auto& s : shards) {
    for (std::int64_t i = 0; i < s.size(); ++i) seen[s[i].ids[0]] += 1;
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(Partitioner, SkewIncreasesPositiveRateSpread) {
  Dataset d = make_dataset(2000, 0.25);
  PartitionOptions iid;
  iid.num_clients = 8;
  iid.label_skew_alpha = 0.0;
  PartitionOptions skew = iid;
  skew.label_skew_alpha = 0.15;

  auto spread = [](const std::vector<Dataset>& shards) {
    double lo = 1.0, hi = 0.0;
    for (const auto& s : shards) {
      lo = std::min(lo, s.positive_rate());
      hi = std::max(hi, s.positive_rate());
    }
    return hi - lo;
  };
  EXPECT_GT(spread(partition(d, skew)), spread(partition(d, iid)));
}

TEST(Partitioner, DeterministicUnderSeed) {
  Dataset d = make_dataset(300, 0.2);
  PartitionOptions opts;
  opts.num_clients = 4;
  opts.label_skew_alpha = 0.5;
  opts.seed = 77;
  const auto a = partition(d, opts);
  const auto b = partition(d, opts);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (std::int64_t j = 0; j < a[i].size(); ++j) {
      EXPECT_EQ(a[i][j].ids[0], b[i][j].ids[0]);
    }
  }
}

TEST(Partitioner, Validation) {
  Dataset d = make_dataset(100, 0.2);
  PartitionOptions bad_count;
  bad_count.num_clients = 0;
  EXPECT_THROW(partition(d, bad_count), Error);

  PartitionOptions mismatch;
  mismatch.num_clients = 4;
  mismatch.size_ratios = {0.5, 0.5};
  EXPECT_THROW(partition(d, mismatch), Error);

  PartitionOptions bad_sum;
  bad_sum.num_clients = 2;
  bad_sum.size_ratios = {0.5, 0.6};
  EXPECT_THROW(partition(d, bad_sum), Error);

  PartitionOptions opts;
  opts.num_clients = 101;
  EXPECT_THROW(partition(d, opts), Error);
}

TEST(ShardStats, ReportsSizeAndRate) {
  Dataset d = make_dataset(100, 0.4);
  PartitionOptions opts;
  opts.num_clients = 2;
  const auto stats = shard_stats(partition(d, opts));
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].size + stats[1].size, 100);
  EXPECT_GT(stats[0].positive_rate, 0.0);
}

struct ClientCountCase {
  std::int64_t clients;
};

class PartitionClientCountTest : public ::testing::TestWithParam<ClientCountCase> {};

TEST_P(PartitionClientCountTest, BalancedCompleteForAnyClientCount) {
  const std::int64_t c = GetParam().clients;
  Dataset d = make_dataset(997, 0.2);
  PartitionOptions opts;
  opts.num_clients = c;
  const auto shards = partition(d, opts);
  EXPECT_EQ(static_cast<std::int64_t>(shards.size()), c);
  EXPECT_EQ(total_size(shards), 997);
  for (const auto& s : shards) EXPECT_GE(s.size(), 997 / c);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionClientCountTest,
                         ::testing::Values(ClientCountCase{2}, ClientCountCase{3},
                                           ClientCountCase{5}, ClientCountCase{8},
                                           ClientCountCase{16}),
                         [](const ::testing::TestParamInfo<ClientCountCase>& info) {
                           return "c" + std::to_string(info.param.clients);
                         });

}  // namespace
}  // namespace cppflare::data
