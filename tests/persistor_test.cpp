#include "flare/persistor.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/error.h"

namespace cppflare::flare {
namespace {

class PersistorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cppflare_persistor_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

nn::StateDict sample_dict() {
  nn::StateDict d;
  d.insert("layer.w", {{2, 2}, {1, 2, 3, 4}});
  d.insert("layer.b", {{2}, {-1, -2}});
  return d;
}

TEST_F(PersistorTest, SaveLoadRoundTrip) {
  ModelPersistor p(path("model.bin"));
  p.save({"job-7", 3, sample_dict()});
  const auto loaded = p.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->job_id, "job-7");
  EXPECT_EQ(loaded->round, 3);
  EXPECT_EQ(loaded->model, sample_dict());
}

TEST_F(PersistorTest, MissingFileReturnsNullopt) {
  ModelPersistor p(path("absent.bin"));
  EXPECT_FALSE(p.load().has_value());
}

TEST_F(PersistorTest, OverwriteKeepsLatest) {
  ModelPersistor p(path("model.bin"));
  p.save({"job", 1, sample_dict()});
  nn::StateDict newer = sample_dict();
  newer.at("layer.w").values[0] = 99.0f;
  p.save({"job", 2, newer});
  const auto loaded = p.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->round, 2);
  EXPECT_FLOAT_EQ(loaded->model.at("layer.w").values[0], 99.0f);
}

TEST_F(PersistorTest, NoTempFileLeftBehind) {
  ModelPersistor p(path("model.bin"));
  p.save({"job", 1, sample_dict()});
  EXPECT_FALSE(std::filesystem::exists(path("model.bin.tmp")));
  EXPECT_TRUE(std::filesystem::exists(path("model.bin")));
}

TEST_F(PersistorTest, CorruptMagicRejected) {
  const std::string file = path("bad.bin");
  {
    std::ofstream out(file, std::ios::binary);
    out << "garbage-not-a-checkpoint";
  }
  ModelPersistor p(file);
  EXPECT_THROW(p.load(), SerializationError);
}

TEST_F(PersistorTest, UnwritableDirectoryThrows) {
  ModelPersistor p("/nonexistent_dir_zzz/model.bin");
  EXPECT_THROW(p.save({"job", 0, sample_dict()}), Error);
}

TEST_F(PersistorTest, EmptyModelRoundTrip) {
  ModelPersistor p(path("empty.bin"));
  p.save({"job", 0, nn::StateDict{}});
  const auto loaded = p.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->model.empty());
}

}  // namespace
}  // namespace cppflare::flare
