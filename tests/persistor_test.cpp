#include "flare/persistor.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/bytes.h"
#include "core/error.h"

namespace cppflare::flare {
namespace {

class PersistorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cppflare_persistor_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

nn::StateDict sample_dict() {
  nn::StateDict d;
  d.insert("layer.w", {{2, 2}, {1, 2, 3, 4}});
  d.insert("layer.b", {{2}, {-1, -2}});
  return d;
}

TEST_F(PersistorTest, SaveLoadRoundTrip) {
  ModelPersistor p(path("model.bin"));
  p.save({"job-7", 3, sample_dict(), {}, {}});
  const auto loaded = p.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->job_id, "job-7");
  EXPECT_EQ(loaded->round, 3);
  EXPECT_EQ(loaded->model, sample_dict());
}

TEST_F(PersistorTest, MissingFileReturnsNullopt) {
  ModelPersistor p(path("absent.bin"));
  EXPECT_FALSE(p.load().has_value());
}

TEST_F(PersistorTest, OverwriteKeepsLatest) {
  ModelPersistor p(path("model.bin"));
  p.save({"job", 1, sample_dict(), {}, {}});
  nn::StateDict newer = sample_dict();
  newer.at("layer.w").values[0] = 99.0f;
  p.save({"job", 2, newer, {}, {}});
  const auto loaded = p.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->round, 2);
  EXPECT_FLOAT_EQ(loaded->model.at("layer.w").values[0], 99.0f);
}

TEST_F(PersistorTest, NoTempFileLeftBehind) {
  ModelPersistor p(path("model.bin"));
  p.save({"job", 1, sample_dict(), {}, {}});
  EXPECT_FALSE(std::filesystem::exists(path("model.bin.tmp")));
  EXPECT_TRUE(std::filesystem::exists(path("model.bin")));
}

TEST_F(PersistorTest, CorruptMagicRejected) {
  const std::string file = path("bad.bin");
  {
    std::ofstream out(file, std::ios::binary);
    out << "garbage-not-a-checkpoint";
  }
  ModelPersistor p(file);
  EXPECT_THROW(p.load(), SerializationError);
}

TEST_F(PersistorTest, UnwritableDirectoryThrows) {
  ModelPersistor p("/nonexistent_dir_zzz/model.bin");
  EXPECT_THROW(p.save({"job", 0, sample_dict(), {}, {}}), Error);
}

TEST_F(PersistorTest, HistoryRoundTrip) {
  ModelPersistor p(path("model.bin"));
  RoundMetrics m0;
  m0.round = 0;
  m0.num_contributions = 3;
  m0.total_samples = 30;
  m0.train_loss = 0.5;
  m0.valid_acc = 0.75;
  m0.valid_loss = 0.6;
  RoundMetrics m1;
  m1.round = 1;
  m1.num_contributions = 2;
  m1.total_samples = 20;
  m1.late_contributions = 1;
  m1.evicted_sites = 1;
  m1.deadline_fired = true;
  p.save({"job-9", 1, sample_dict(), {m0, m1}, {}});
  const auto loaded = p.load();
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->history.size(), 2u);
  EXPECT_EQ(loaded->history[0].num_contributions, 3);
  EXPECT_DOUBLE_EQ(loaded->history[0].valid_acc, 0.75);
  EXPECT_EQ(loaded->history[0].late_contributions, 0);
  EXPECT_FALSE(loaded->history[0].deadline_fired);
  EXPECT_EQ(loaded->history[1].round, 1);
  EXPECT_EQ(loaded->history[1].late_contributions, 1);
  EXPECT_EQ(loaded->history[1].evicted_sites, 1);
  EXPECT_TRUE(loaded->history[1].deadline_fired);
}

TEST_F(PersistorTest, V1CheckpointLoadsWithEmptyHistory) {
  // A pre-fault-tolerance checkpoint (magic "CPK1", no history section)
  // must still load so old runs can be resumed after an upgrade.
  const std::string file = path("v1.bin");
  core::ByteWriter w;
  w.write_u32(0x43504b31);  // "CPK1"
  w.write_string("job-old");
  w.write_i64(4);
  sample_dict().serialize(w);
  {
    std::ofstream out(file, std::ios::binary);
    out.write(reinterpret_cast<const char*>(w.bytes().data()),
              static_cast<std::streamsize>(w.size()));
  }
  ModelPersistor p(file);
  const auto loaded = p.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->job_id, "job-old");
  EXPECT_EQ(loaded->round, 4);
  EXPECT_EQ(loaded->model, sample_dict());
  EXPECT_TRUE(loaded->history.empty());
}

TEST_F(PersistorTest, V2CheckpointLoadsWithoutDefenseTelemetry) {
  // A PR-3-era checkpoint (magic "CPK2": history but no defense telemetry,
  // no reputation section, no integrity footer) must still load.
  const std::string file = path("v2.bin");
  core::ByteWriter w;
  w.write_u32(0x43504b32);  // "CPK2"
  w.write_string("job-v2");
  w.write_i64(2);
  sample_dict().serialize(w);
  w.write_u32(1);  // one history entry, v2 layout
  w.write_i64(0);  // round
  w.write_i64(3);  // num_contributions
  w.write_i64(30);
  w.write_f64(0.5);
  w.write_f64(0.75);
  w.write_f64(0.6);
  w.write_i64(0);  // late_contributions
  w.write_i64(0);  // evicted_sites
  w.write_bool(false);
  {
    std::ofstream out(file, std::ios::binary);
    out.write(reinterpret_cast<const char*>(w.bytes().data()),
              static_cast<std::streamsize>(w.size()));
  }
  ModelPersistor p(file);
  const auto loaded = p.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->job_id, "job-v2");
  ASSERT_EQ(loaded->history.size(), 1u);
  EXPECT_EQ(loaded->history[0].num_contributions, 3);
  EXPECT_EQ(loaded->history[0].rejected_updates, 0);
  EXPECT_TRUE(loaded->reputation.empty());
}

TEST_F(PersistorTest, DefenseTelemetryAndReputationRoundTrip) {
  ModelPersistor p(path("v3.bin"));
  RoundMetrics m;
  m.round = 0;
  m.num_contributions = 7;
  m.rejected_updates = 1;
  m.quarantined_sites = 1;
  m.rejections_by_reason["non_finite"] = 1;
  m.rejections_by_reason["norm_outlier"] = 2;
  Checkpoint cp{"job-v3", 1, sample_dict(), {m}, {}};
  SiteStanding bad;
  bad.strikes = 2;
  bad.quarantined = true;
  bad.total_rejections = 2;
  bad.times_quarantined = 1;
  cp.reputation["site-8"] = bad;
  p.save(cp);
  const auto loaded = p.load();
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->history.size(), 1u);
  EXPECT_EQ(loaded->history[0].rejected_updates, 1);
  EXPECT_EQ(loaded->history[0].quarantined_sites, 1);
  EXPECT_EQ(loaded->history[0].rejections_by_reason.at("non_finite"), 1);
  EXPECT_EQ(loaded->history[0].rejections_by_reason.at("norm_outlier"), 2);
  ASSERT_EQ(loaded->reputation.count("site-8"), 1u);
  EXPECT_TRUE(loaded->reputation.at("site-8").quarantined);
  EXPECT_EQ(loaded->reputation.at("site-8").strikes, 2);
  EXPECT_EQ(loaded->reputation.at("site-8").times_quarantined, 1);
}

TEST_F(PersistorTest, TruncatedCheckpointFailsIntegrityCheck) {
  const std::string file = path("model.bin");
  ModelPersistor p(file);
  p.save({"job", 1, sample_dict(), {}, {}});
  const auto size = std::filesystem::file_size(file);
  std::filesystem::resize_file(file, size - 7);
  try {
    p.load();
    FAIL() << "truncated checkpoint must not load";
  } catch (const SerializationError& e) {
    // The error names the offending path so an operator can find the file.
    EXPECT_NE(std::string(e.what()).find(file), std::string::npos);
  }
}

TEST_F(PersistorTest, TruncatedBelowFooterSizeFailsWithClearError) {
  const std::string file = path("model.bin");
  ModelPersistor p(file);
  p.save({"job", 1, sample_dict(), {}, {}});
  std::filesystem::resize_file(file, 10);  // magic survives, footer gone
  try {
    p.load();
    FAIL() << "footerless checkpoint must not load";
  } catch (const SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
}

TEST_F(PersistorTest, FlippedByteFailsIntegrityCheck) {
  const std::string file = path("model.bin");
  ModelPersistor p(file);
  p.save({"job", 1, sample_dict(), {}, {}});
  // Flip one bit in the middle of the body (past the magic, before the
  // footer): the SHA-256 footer must catch it.
  std::vector<char> bytes;
  {
    std::ifstream in(file, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 40u);
  bytes[bytes.size() / 2] ^= 0x01;
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  try {
    p.load();
    FAIL() << "corrupted checkpoint must not load";
  } catch (const SerializationError& e) {
    EXPECT_NE(std::string(e.what()).find("integrity check failed"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find(file), std::string::npos);
  }
}

TEST_F(PersistorTest, EmptyModelRoundTrip) {
  ModelPersistor p(path("empty.bin"));
  p.save({"job", 0, nn::StateDict{}, {}, {}});
  const auto loaded = p.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->model.empty());
}

}  // namespace
}  // namespace cppflare::flare
