// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace cppflare::testing {

/// Numerical gradient check: for scalar-valued `f` of `inputs`, compares
/// analytic gradients (from backward()) against central differences.
///
/// `f` must rebuild the graph from the *current data* of the inputs on every
/// call (it is invoked repeatedly with perturbed values).
inline void expect_gradients_close(
    const std::function<tensor::Tensor()>& f,
    std::vector<tensor::Tensor> inputs, float eps = 1e-2f, float rtol = 5e-2f,
    float atol = 5e-3f) {
  // Analytic pass.
  tensor::Tensor loss = f();
  ASSERT_EQ(loss.numel(), 1);
  loss.backward();
  std::vector<std::vector<float>> analytic;
  analytic.reserve(inputs.size());
  for (auto& in : inputs) {
    ASSERT_TRUE(in.requires_grad());
    analytic.push_back(in.impl()->grad);
    ASSERT_EQ(analytic.back().size(), in.vec().size());
  }

  // Numerical pass (central differences), with autograd off.
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    auto& in = inputs[t];
    for (std::size_t i = 0; i < in.vec().size(); ++i) {
      const float saved = in.vec()[i];
      in.vec()[i] = saved + eps;
      const float plus = [&] {
        tensor::NoGradGuard g;
        return f().item();
      }();
      in.vec()[i] = saved - eps;
      const float minus = [&] {
        tensor::NoGradGuard g;
        return f().item();
      }();
      in.vec()[i] = saved;
      const float numeric = (plus - minus) / (2.0f * eps);
      const float got = analytic[t][i];
      const float tol = atol + rtol * std::fabs(numeric);
      EXPECT_NEAR(got, numeric, tol)
          << "input " << t << " element " << i;
    }
  }
}

/// Elementwise comparison helper.
inline void expect_tensor_eq(const tensor::Tensor& got,
                             const std::vector<float>& want, float tol = 1e-5f) {
  ASSERT_EQ(static_cast<std::size_t>(got.numel()), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got.data()[i], want[i], tol) << "element " << i;
  }
}

}  // namespace cppflare::testing
