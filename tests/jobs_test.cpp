// Multi-job coordinator tests (DESIGN.md §16): one JobRunner hosting N
// federated jobs over a shared site pool.
//
// Covers the admin line protocol (roundtrip over the sealed transport plus
// malformed-command rejection), registry-enforced job-id uniqueness, typed
// cross-job frame rejection, abort-while-running, the compute-budget
// scheduler, and the determinism acceptance bar: concurrent jobs produce
// per-job final models byte-identical to equivalent solo runs, on both the
// in-process and TCP transports. A fork/SIGKILL harness (crash_recovery_test
// style) proves every in-flight job independently survives a coordinator
// kill/restart via its own checkpoint + journal.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/bytes.h"
#include "core/error.h"
#include "core/logging.h"
#include "core/parallel.h"
#include "flare/client.h"
#include "flare/jobs.h"
#include "flare/messages.h"
#include "flare/observability.h"
#include "flare/provision.h"
#include "flare/secure_channel.h"
#include "flare/tcp.h"

namespace cppflare::flare {
namespace jobs_harness {

nn::StateDict dict_of(std::vector<float> w) {
  nn::StateDict d;
  d.insert("w", {{static_cast<std::int64_t>(w.size())}, std::move(w)});
  return d;
}

nn::StateDict tiny_model() { return dict_of({0.0f, 0.0f, 0.0f}); }

std::vector<std::uint8_t> model_bytes(const nn::StateDict& model) {
  core::ByteWriter w;
  model.serialize(w);
  return w.bytes();
}

/// Learner returning fixed weights; the value encodes (job, site) so each
/// job's aggregate is distinct and comparable against its solo twin.
class ConstantLearner : public Learner {
 public:
  ConstantLearner(std::string site, float value)
      : site_(std::move(site)), value_(value) {}

  Dxo train(const Dxo& global, const FLContext&) override {
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v = value_;
    }
    Dxo update(DxoKind::kWeights, updated);
    update.set_meta_int(Dxo::kMetaNumSamples, 10);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float value_;
};

/// Shared participant pool: site-1..N + "server" + the "admin" identity.
std::map<std::string, Credential> make_pool(std::int64_t num_sites) {
  const Provisioner provisioner("multi-job-pool", 21);
  std::map<std::string, Credential> pool =
      provisioner.provision_sites(num_sites);
  pool.insert({"admin", provisioner.provision("admin")});
  return pool;
}

JobSpec make_spec(const std::string& job_id, std::int64_t rounds,
                  std::int64_t clients) {
  JobSpec spec;
  spec.server.job_id = job_id;
  spec.server.num_rounds = rounds;
  spec.server.expected_clients = clients;
  spec.server.min_clients = clients;
  spec.initial_model = tiny_model();
  spec.aggregator = std::make_unique<FedAvgAggregator>(false);
  return spec;
}

/// Deterministic per-(job, site) constant so every job has a distinct but
/// reproducible fixed point.
float site_value(std::int64_t job_index, std::int64_t site_index) {
  return 0.25f * static_cast<float>(site_index + 1) +
         3.0f * static_cast<float>(job_index);
}

/// Drives `num_sites` clients of one job to completion. `connect` builds a
/// fresh Connection per client (in-proc or TCP).
void drive_job(const std::map<std::string, Credential>& pool,
               const std::string& job_id, std::int64_t job_index,
               std::int64_t num_sites,
               const std::function<std::unique_ptr<Connection>()>& connect) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_sites));
  for (std::int64_t i = 0; i < num_sites; ++i) {
    const std::string name = "site-" + std::to_string(i + 1);
    threads.emplace_back([&pool, job_id, job_index, i, name, &connect] {
      ClientConfig config;
      config.job_id = job_id;
      config.max_idle_ms = 30000;
      FederatedClient client(
          config, pool.at(name), connect(),
          std::make_shared<ConstantLearner>(name, site_value(job_index, i)));
      client.run();
    });
  }
  for (std::thread& t : threads) t.join();
}

// ---------------------------------------------------------------------------
// Fork/SIGKILL child: two journaling jobs in one coordinator process
// ---------------------------------------------------------------------------

/// Runs job-a and job-b concurrently (each with its own checkpoint +
/// journal under `dir`), writes each job's final model to dir/final_<job>.
/// Restart-oblivious: the same code path runs fresh and resumed.
int run_two_jobs(const std::string& dir) {
  const std::int64_t kSites = 3;
  // Both jobs must hold a slot at once: on a 1-core machine the second
  // would queue, and its clients' retry budgets can expire before the
  // first finishes (we run in a forked child, so the override is private).
  core::set_compute_threads(2);
  const std::map<std::string, Credential> pool = make_pool(kSites);
  JobRunner runner(pool);
  const std::vector<std::string> job_ids = {"job-a", "job-b"};
  for (std::size_t j = 0; j < job_ids.size(); ++j) {
    JobSpec spec = make_spec(job_ids[j], 3, kSites);
    spec.persist_path = dir + "/" + job_ids[j] + ".bin";
    spec.resume = true;
    spec.journal = true;
    spec.journal_sync = core::WalSyncPolicy::kEveryRecord;
    runner.submit(std::move(spec));
  }
  std::vector<std::thread> drivers;
  for (std::size_t j = 0; j < job_ids.size(); ++j) {
    drivers.emplace_back([&, j] {
      drive_job(pool, job_ids[j], static_cast<std::int64_t>(j), kSites,
                [&runner] {
                  return std::make_unique<AsyncInProcConnection>(
                      runner.async_router());
                });
    });
  }
  for (std::thread& t : drivers) t.join();
  if (!runner.wait_all(30000)) return 3;
  for (const std::string& job_id : job_ids) {
    const FederatedServer& server = runner.server(job_id);
    if (!server.finished()) return 3;
    const std::vector<std::uint8_t> bytes =
        model_bytes(runner.server(job_id).global_model());
    std::ofstream out(dir + "/final_" + job_id,
                      std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  return 0;
}

int child_main(int argc, char** argv) {
  if (argc < 3) return 4;
  core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
  try {
    return run_two_jobs(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "jobs child threw: %s\n", e.what());
    return 4;
  }
}

}  // namespace jobs_harness

namespace {

using jobs_harness::ConstantLearner;
using jobs_harness::drive_job;
using jobs_harness::make_pool;
using jobs_harness::make_spec;
using jobs_harness::model_bytes;

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

class JobsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
    root_ = std::filesystem::temp_directory_path() /
            ("cppflare_jobs_" + std::to_string(::getpid()));
    std::filesystem::create_directories(root_);
  }
  void TearDown() override {
    std::filesystem::remove_all(root_);
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }

  /// Solo reference: a fresh runner hosting only `job_id`, driven to
  /// completion over the in-process transport.
  std::vector<std::uint8_t> solo_final(
      const std::map<std::string, Credential>& pool, const std::string& job_id,
      std::int64_t job_index, std::int64_t rounds, std::int64_t sites) {
    JobRunner runner(pool);
    runner.submit(make_spec(job_id, rounds, sites));
    drive_job(pool, job_id, job_index, sites, [&runner] {
      return std::make_unique<AsyncInProcConnection>(runner.async_router());
    });
    EXPECT_TRUE(runner.wait_all(30000));
    return model_bytes(runner.server(job_id).global_model());
  }

  std::filesystem::path root_;
};

// ---------------------------------------------------------------------------
// Registry: uniqueness, validation, views
// ---------------------------------------------------------------------------

TEST_F(JobsTest, SubmitEnforcesJobIdUniqueness) {
  const auto pool = make_pool(2);
  JobRunner runner(pool);
  EXPECT_EQ(runner.submit(make_spec("job-a", 1, 2)), "job-a");
  // Same id again: typed ConfigError, registry unchanged.
  EXPECT_THROW(runner.submit(make_spec("job-a", 1, 2)), ConfigError);
  // Terminal jobs keep their id reserved too.
  EXPECT_TRUE(runner.abort("job-a", "make it terminal"));
  EXPECT_THROW(runner.submit(make_spec("job-a", 1, 2)), ConfigError);
  EXPECT_EQ(runner.list().size(), 1u);
}

TEST_F(JobsTest, SubmitValidatesSpec) {
  const auto pool = make_pool(2);
  JobRunner runner(pool);
  JobSpec no_id = make_spec("", 1, 2);
  EXPECT_THROW(runner.submit(std::move(no_id)), ConfigError);
  JobSpec no_agg = make_spec("job-a", 1, 2);
  no_agg.aggregator = nullptr;
  EXPECT_THROW(runner.submit(std::move(no_agg)), ConfigError);
  JobSpec bad_journal = make_spec("job-a", 1, 2);
  bad_journal.journal = true;  // no journal_path and no persist_path
  EXPECT_THROW(runner.submit(std::move(bad_journal)), ConfigError);
  EXPECT_TRUE(runner.list().empty());
}

TEST_F(JobsTest, StatusAndServerAccessorsAreTyped) {
  const auto pool = make_pool(2);
  JobRunner runner(pool);
  runner.submit(make_spec("job-a", 1, 2));
  EXPECT_THROW(runner.status("nope"), ConfigError);
  EXPECT_THROW(runner.server("nope"), ConfigError);
  const JobStatus s = runner.status("job-a");
  EXPECT_EQ(s.job_id, "job-a");
  EXPECT_EQ(s.state, JobState::kRunning);
  EXPECT_EQ(s.num_rounds, 1);
  EXPECT_EQ(s.registered_clients, 0);
}

// ---------------------------------------------------------------------------
// Scheduler: compute-budget admission
// ---------------------------------------------------------------------------

TEST_F(JobsTest, JobsQueueWhenComputeBudgetIsExhausted) {
  const std::size_t old_budget = core::compute_threads();
  core::set_compute_threads(1);
  const auto pool = make_pool(2);
  {
    JobRunner runner(pool);
    runner.submit(make_spec("job-a", 1, 2));
    runner.submit(make_spec("job-b", 1, 2));
    EXPECT_EQ(runner.status("job-a").state, JobState::kRunning);
    EXPECT_EQ(runner.status("job-b").state, JobState::kQueued);
    // A queued job has no server yet — the accessor says so, typed.
    EXPECT_THROW(runner.server("job-b"), ConfigError);

    // Finishing job-a frees its slot and admits job-b.
    drive_job(pool, "job-a", 0, 2, [&runner] {
      return std::make_unique<AsyncInProcConnection>(runner.async_router());
    });
    EXPECT_TRUE(runner.wait_until_running("job-b", 10000));
    EXPECT_EQ(runner.status("job-a").state, JobState::kFinished);

    // Cancelling the now-running job-b lets the runner tear down cleanly.
    EXPECT_TRUE(runner.abort("job-b", "test teardown"));
  }
  core::set_compute_threads(old_budget);
}

TEST_F(JobsTest, QueuedJobCanBeCancelledBeforeItEverRuns) {
  const std::size_t old_budget = core::compute_threads();
  core::set_compute_threads(1);
  const auto pool = make_pool(2);
  {
    JobRunner runner(pool);
    runner.submit(make_spec("job-a", 1, 2));
    // Demands more slots than the machine has: clamped, so it queues behind
    // job-a instead of wedging the queue forever.
    JobSpec greedy = make_spec("job-b", 1, 2);
    greedy.compute_slots = 99;
    runner.submit(std::move(greedy));
    EXPECT_EQ(runner.status("job-b").state, JobState::kQueued);
    EXPECT_TRUE(runner.abort("job-b", "operator cancelled"));
    const JobStatus s = runner.status("job-b");
    EXPECT_EQ(s.state, JobState::kAborted);
    EXPECT_EQ(s.abort_code, AbortCode::kExternal);
    EXPECT_EQ(s.abort_reason, "operator cancelled");
    // Cancelled-while-queued means no server ever existed.
    EXPECT_THROW(runner.server("job-b"), ConfigError);
    // Second abort is a no-op.
    EXPECT_FALSE(runner.abort("job-b", "again"));
    EXPECT_TRUE(runner.abort("job-a", "test teardown"));
  }
  core::set_compute_threads(old_budget);
}

// ---------------------------------------------------------------------------
// Admin line protocol
// ---------------------------------------------------------------------------

TEST_F(JobsTest, AdminProtocolRoundTripOverSealedTransport) {
  const auto pool = make_pool(2);
  JobRunner runner(pool);
  runner.submit(make_spec("job-a", 1, 2));
  runner.submit(make_spec("job-b", 5, 2));
  AdminClient admin(
      std::make_unique<AsyncInProcConnection>(runner.async_router()),
      pool.at("admin"));

  const std::string listing = admin.call("list");
  EXPECT_EQ(listing.rfind("ok jobs=2", 0), 0u) << listing;
  EXPECT_NE(listing.find("job-a"), std::string::npos);
  EXPECT_NE(listing.find("job-b"), std::string::npos);

  EXPECT_NE(admin.call("status job-a").find("state=running"),
            std::string::npos);

  EXPECT_EQ(admin.call("abort job-b operator says stop"), "ok aborting job-b");
  const std::string aborted = admin.call("status job-b");
  EXPECT_NE(aborted.find("state=aborted"), std::string::npos) << aborted;
  EXPECT_NE(aborted.find("operator says stop"), std::string::npos) << aborted;

  // Drive job-a to completion, then read its metrics through the console.
  drive_job(pool, "job-a", 0, 2, [&runner] {
    return std::make_unique<AsyncInProcConnection>(runner.async_router());
  });
  ASSERT_TRUE(runner.wait_all(30000));
  const std::string metrics = admin.call("metrics job-a");
  EXPECT_EQ(metrics.rfind("ok job-a", 0), 0u) << metrics;
  EXPECT_NE(metrics.find(std::string("counter ") +
                         metric_names::kServerRoundsCompleted + " 1"),
            std::string::npos)
      << metrics;
}

TEST_F(JobsTest, AdminSubmitInstantiatesRegisteredBlueprint) {
  const auto pool = make_pool(2);
  JobRunner runner(pool);
  runner.register_blueprint("tiny", [](const std::string& job_id) {
    JobSpec spec = make_spec(job_id, 1, 2);
    return spec;
  });
  EXPECT_EQ(runner.admin_execute("submit tiny job-new"), "ok submitted job-new");
  EXPECT_EQ(runner.status("job-new").state, JobState::kRunning);
  // Unknown blueprint and duplicate id are typed errors, reported as text.
  EXPECT_EQ(runner.admin_execute("submit nope job-x").rfind("err ", 0), 0u);
  EXPECT_EQ(runner.admin_execute("submit tiny job-new").rfind("err ", 0), 0u);
  EXPECT_TRUE(runner.abort("job-new", "test teardown"));
}

TEST_F(JobsTest, MalformedAdminCommandsAreRejectedNotExecuted) {
  const auto pool = make_pool(2);
  JobRunner runner(pool);
  runner.submit(make_spec("job-a", 1, 2));
  AdminClient admin(
      std::make_unique<AsyncInProcConnection>(runner.async_router()),
      pool.at("admin"));
  EXPECT_EQ(admin.call("bogus").rfind("err unknown command 'bogus'", 0), 0u);
  EXPECT_EQ(admin.call("status"), "err usage: status <job>");
  EXPECT_EQ(admin.call("metrics"), "err usage: metrics <job>");
  EXPECT_EQ(admin.call("abort"), "err usage: abort <job> [reason]");
  EXPECT_EQ(admin.call("status nope").rfind("err ", 0), 0u);
  EXPECT_EQ(admin.call("").rfind("err empty command", 0), 0u);
  // Nothing above changed the registry.
  EXPECT_EQ(runner.status("job-a").state, JobState::kRunning);
  EXPECT_TRUE(runner.abort("job-a", "test teardown"));
}

TEST_F(JobsTest, AdminFramesRequireTheProvisionedIdentity) {
  const auto pool = make_pool(2);
  JobRunner runner(pool);
  runner.submit(make_spec("job-a", 1, 2));
  // Wrong key: the server's rejection is sealed under the real admin key,
  // so the impostor cannot even read it.
  Credential impostor = pool.at("admin");
  impostor.secret[0] ^= 0xff;
  AdminClient bad_key(
      std::make_unique<AsyncInProcConnection>(runner.async_router()),
      impostor);
  EXPECT_THROW(bad_key.call("list"), Error);

  // A pool provisioned without an "admin" identity rejects the console
  // entirely.
  auto no_admin = pool;
  no_admin.erase("admin");
  JobRunner closed(no_admin);
  closed.submit(make_spec("job-a", 1, 2));
  AdminClient locked_out(
      std::make_unique<AsyncInProcConnection>(closed.async_router()),
      pool.at("admin"));
  EXPECT_THROW(locked_out.call("list"), Error);
  EXPECT_TRUE(runner.abort("job-a", "test teardown"));
  EXPECT_TRUE(closed.abort("job-a", "test teardown"));
}

// ---------------------------------------------------------------------------
// Cross-job routing
// ---------------------------------------------------------------------------

TEST_F(JobsTest, CrossJobFramesAreRejectedWithTypedError) {
  const auto pool = make_pool(2);
  JobRunner runner(pool);
  runner.submit(make_spec("job-a", 1, 2));
  runner.submit(make_spec("job-b", 1, 2));

  // Bound to a job this coordinator does not host: fatal kWrongJob, the
  // client reports it as cross-job traffic instead of retrying forever.
  ClientConfig wrong;
  wrong.job_id = "job-nope";
  FederatedClient misrouted(
      wrong, pool.at("site-1"),
      std::make_unique<AsyncInProcConnection>(runner.async_router()),
      std::make_shared<ConstantLearner>("site-1", 1.0f));
  EXPECT_THROW(misrouted.run(), ProtocolError);

  // Unbound frames are only routable when exactly one job is hosted; with
  // two, the ambiguity is a typed error, not a guess.
  ClientConfig unbound;
  unbound.job_id = "";
  FederatedClient ambiguous(
      unbound, pool.at("site-1"),
      std::make_unique<AsyncInProcConnection>(runner.async_router()),
      std::make_shared<ConstantLearner>("site-1", 1.0f));
  EXPECT_THROW(ambiguous.run(), ProtocolError);

  EXPECT_TRUE(runner.abort("job-a", "test teardown"));
  EXPECT_TRUE(runner.abort("job-b", "test teardown"));
}

TEST_F(JobsTest, UnboundFramesRouteToASingleHostedJob) {
  // Pre-multi-job clients (empty job_id) keep working against a
  // single-job coordinator.
  const auto pool = make_pool(2);
  JobRunner runner(pool);
  runner.submit(make_spec("solo", 1, 2));
  std::vector<std::thread> threads;
  for (std::int64_t i = 0; i < 2; ++i) {
    const std::string name = "site-" + std::to_string(i + 1);
    threads.emplace_back([&runner, &pool, name, i] {
      ClientConfig config;  // job_id left empty on purpose
      config.max_idle_ms = 30000;
      FederatedClient client(
          config, pool.at(name),
          std::make_unique<AsyncInProcConnection>(runner.async_router()),
          std::make_shared<ConstantLearner>(name, 1.0f + static_cast<float>(i)));
      client.run();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(runner.wait_all(30000));
  EXPECT_EQ(runner.status("solo").state, JobState::kFinished);
}

TEST_F(JobsTest, CrossJobReplayDoesNotPoisonTheReplayTracker) {
  // Sites share one credential across jobs, so a captured job-a frame with a
  // high sequence number verifies at job-b's server too. It must be rejected
  // on its job binding BEFORE the replay tracker advances — otherwise one
  // replayed frame wedges the site's legitimate job-b client, whose own
  // sequences start far below, as a false replay.
  const std::size_t old_budget = core::compute_threads();
  core::set_compute_threads(2);  // both jobs must be admitted
  const auto pool = make_pool(2);
  JobRunner runner(pool);
  runner.submit(make_spec("job-a", 1, 2));
  runner.submit(make_spec("job-b", 1, 2));
  const Credential& site = pool.at("site-1");
  Dispatcher dispatch = runner.server("job-b").dispatcher();

  const std::vector<std::uint8_t> replayed =
      seal("site-1", site.secret, 1000,
           pack(RegisterRequest{"site-1", site.token}), "job-a");
  Envelope reply = open(dispatch(replayed), site.secret);
  EXPECT_EQ(decode_error(reply.payload).code, ErrorCode::kWrongJob);

  // The site's first legitimate job-b frame (sequence 1) still goes through.
  const std::vector<std::uint8_t> legit =
      seal("site-1", site.secret, 1,
           pack(RegisterRequest{"site-1", site.token}), "job-b");
  reply = open(dispatch(legit), site.secret);
  EXPECT_TRUE(decode_register_ack(reply.payload).accepted);

  EXPECT_TRUE(runner.abort("job-a", "test teardown"));
  EXPECT_TRUE(runner.abort("job-b", "test teardown"));
  core::set_compute_threads(old_budget);
}

TEST_F(JobsTest, UnknownSendersCannotEnumerateHostedJobIds) {
  // An unprovisioned peer can seal under the empty secret. The router must
  // answer it identically whether or not the probed job id exists — a
  // kWrongJob-vs-unknown-participant difference would be a credential-free
  // oracle enumerating which jobs this coordinator hosts.
  const auto pool = make_pool(2);
  JobRunner runner(pool);
  runner.submit(make_spec("job-a", 1, 2));
  runner.submit(make_spec("job-b", 1, 2));
  Dispatcher dispatch = runner.router();
  const std::vector<std::uint8_t> empty_key;
  const auto probe = [&](const std::string& job_id) {
    const std::vector<std::uint8_t> frame =
        seal("mallory", empty_key, 1, pack(GetTaskRequest{"s", 0}), job_id);
    const Envelope reply = open(dispatch(frame), empty_key);
    return decode_error(reply.payload);
  };
  const ErrorMessage hosted = probe("job-a");     // hosted here
  const ErrorMessage unhosted = probe("job-zz");  // not hosted anywhere
  EXPECT_EQ(hosted.code, ErrorCode::kRetryable);
  EXPECT_EQ(unhosted.code, hosted.code);
  EXPECT_EQ(unhosted.message, hosted.message);

  EXPECT_TRUE(runner.abort("job-a", "test teardown"));
  EXPECT_TRUE(runner.abort("job-b", "test teardown"));
}

// ---------------------------------------------------------------------------
// Abort while running
// ---------------------------------------------------------------------------

TEST_F(JobsTest, AbortWhileRunningStopsClientsAndRecordsTheReason) {
  const auto pool = make_pool(2);
  JobRunner runner(pool);
  runner.submit(make_spec("job-a", 1000, 2));  // far more rounds than we run
  FederatedServer& server = runner.server("job-a");

  std::vector<std::thread> threads;
  for (std::int64_t i = 0; i < 2; ++i) {
    const std::string name = "site-" + std::to_string(i + 1);
    threads.emplace_back([&runner, &pool, name] {
      ClientConfig config;
      config.job_id = "job-a";
      config.max_idle_ms = 30000;
      FederatedClient client(
          config, pool.at(name),
          std::make_unique<AsyncInProcConnection>(runner.async_router()),
          std::make_shared<ConstantLearner>(name, 2.0f));
      client.run();  // returns on the server's kStop after the abort
    });
  }
  // Let the federation make real progress before pulling the plug.
  while (server.current_round() < 2) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(runner.abort("job-a", "operator requested"));
  for (std::thread& t : threads) t.join();

  EXPECT_TRUE(runner.wait_all(30000));
  const JobStatus s = runner.status("job-a");
  EXPECT_EQ(s.state, JobState::kAborted);
  EXPECT_EQ(s.abort_code, AbortCode::kExternal);
  EXPECT_NE(s.abort_reason.find("operator requested"), std::string::npos);
  // A terminal job cannot be aborted twice.
  EXPECT_FALSE(runner.abort("job-a", "again"));
}

TEST_F(JobsTest, AbortAfterCleanFinishIsRefused) {
  const auto pool = make_pool(2);
  JobRunner runner(pool);
  runner.submit(make_spec("job-a", 1, 2));
  drive_job(pool, "job-a", 0, 2, [&runner] {
    return std::make_unique<AsyncInProcConnection>(runner.async_router());
  });
  ASSERT_TRUE(runner.wait_all(30000));
  FederatedServer& server = runner.server("job-a");
  ASSERT_TRUE(server.finished());
  // The server settles the finish-vs-abort race under its own lock: a late
  // abort is refused rather than flipping a finished run to aborted.
  EXPECT_FALSE(server.abort("too late"));
  EXPECT_TRUE(server.finished());
  EXPECT_FALSE(server.aborted());
  EXPECT_EQ(runner.status("job-a").state, JobState::kFinished);
  EXPECT_FALSE(runner.abort("job-a", "too late"));
}

// ---------------------------------------------------------------------------
// Resume: a job restored past its last round is terminal at admission
// ---------------------------------------------------------------------------

TEST_F(JobsTest, ResumedCompleteJobIsTerminalAtAdmissionAndFreesItsSlots) {
  const auto pool = make_pool(2);
  const std::string persist = (root_ / "done.bin").string();
  {
    JobRunner runner(pool);
    JobSpec spec = make_spec("job-done", 1, 2);
    spec.persist_path = persist;
    runner.submit(std::move(spec));
    drive_job(pool, "job-done", 0, 2, [&runner] {
      return std::make_unique<AsyncInProcConnection>(runner.async_router());
    });
    ASSERT_TRUE(runner.wait_all(30000));
  }
  // Restart with resume=true: the checkpoint already covers every round, so
  // the server is born finished and never fires kEndRun. The job must still
  // go terminal — slots freed, FIFO successors admitted, wait_all returning
  // — or a coordinator restarted after a job finished wedges forever.
  const std::size_t old_budget = core::compute_threads();
  core::set_compute_threads(1);
  {
    JobRunner restarted(pool);
    JobSpec resumed = make_spec("job-done", 1, 2);
    resumed.persist_path = persist;
    resumed.resume = true;
    restarted.submit(std::move(resumed));
    EXPECT_EQ(restarted.status("job-done").state, JobState::kFinished);
    EXPECT_TRUE(restarted.wait_all(10000));
    // The whole 1-slot budget is free again: the next job is admitted
    // immediately instead of queueing behind the resumed-complete one.
    restarted.submit(make_spec("job-next", 1, 2));
    EXPECT_EQ(restarted.status("job-next").state, JobState::kRunning);
    EXPECT_TRUE(restarted.abort("job-next", "test teardown"));
    EXPECT_TRUE(restarted.wait_all(10000));
  }
  core::set_compute_threads(old_budget);
}

// ---------------------------------------------------------------------------
// Determinism: concurrent jobs match their solo twins, both transports
// ---------------------------------------------------------------------------

TEST_F(JobsTest, TwoConcurrentJobsMatchSoloRuns) {
  const std::int64_t kSites = 4;
  const std::int64_t kRounds = 3;
  // Pin the budget so both jobs genuinely run concurrently — on a 1-core
  // machine one would queue, and its clients' retry budgets can expire
  // before capacity frees (especially under TSan's slowdown).
  const std::size_t old_budget = core::compute_threads();
  core::set_compute_threads(2);
  const auto pool = make_pool(kSites);
  JobRunner runner(pool);
  runner.submit(make_spec("job-a", kRounds, kSites));
  runner.submit(make_spec("job-b", kRounds, kSites));
  std::vector<std::thread> drivers;
  const std::vector<std::string> job_ids = {"job-a", "job-b"};
  for (std::size_t j = 0; j < job_ids.size(); ++j) {
    drivers.emplace_back([&, j] {
      drive_job(pool, job_ids[j], static_cast<std::int64_t>(j), kSites,
                [&runner] {
                  return std::make_unique<AsyncInProcConnection>(
                      runner.async_router());
                });
    });
  }
  for (std::thread& t : drivers) t.join();
  ASSERT_TRUE(runner.wait_all(30000));

  for (std::size_t j = 0; j < job_ids.size(); ++j) {
    EXPECT_EQ(runner.status(job_ids[j]).state, JobState::kFinished);
    const auto concurrent = model_bytes(runner.server(job_ids[j]).global_model());
    const auto solo = solo_final(pool, job_ids[j], static_cast<std::int64_t>(j),
                                 kRounds, kSites);
    EXPECT_EQ(concurrent, solo)
        << job_ids[j] << " diverged from its solo twin";
  }
  core::set_compute_threads(old_budget);
}

TEST_F(JobsTest, FourConcurrentJobsEightSitesMatchSoloOnBothTransports) {
  const std::int64_t kJobs = 4;
  const std::int64_t kSites = 8;
  const std::int64_t kRounds = 2;
  // All four jobs must hold a slot at once (see TwoConcurrentJobs above).
  const std::size_t old_budget = core::compute_threads();
  core::set_compute_threads(static_cast<std::size_t>(kJobs));
  const auto pool = make_pool(kSites);

  // Solo references, one per job.
  std::vector<std::vector<std::uint8_t>> solo;
  for (std::int64_t j = 0; j < kJobs; ++j) {
    solo.push_back(solo_final(pool, "job-" + std::to_string(j), j, kRounds,
                              kSites));
  }

  for (const bool use_tcp : {false, true}) {
    SCOPED_TRACE(use_tcp ? "tcp" : "in-proc");
    JobRunner runner(pool);
    for (std::int64_t j = 0; j < kJobs; ++j) {
      runner.submit(make_spec("job-" + std::to_string(j), kRounds, kSites));
    }
    std::unique_ptr<TcpServer> tcp;
    if (use_tcp) {
      tcp = std::make_unique<TcpServer>(0, runner.async_router());
    }
    std::vector<std::thread> drivers;
    for (std::int64_t j = 0; j < kJobs; ++j) {
      drivers.emplace_back([&, j] {
        const std::string job_id = "job-" + std::to_string(j);
        drive_job(pool, job_id, j, kSites,
                  [&runner, &tcp]() -> std::unique_ptr<Connection> {
                    if (tcp != nullptr) {
                      return std::make_unique<TcpConnection>("127.0.0.1",
                                                             tcp->port());
                    }
                    return std::make_unique<AsyncInProcConnection>(
                        runner.async_router());
                  });
      });
    }
    for (std::thread& t : drivers) t.join();
    ASSERT_TRUE(runner.wait_all(60000));
    for (std::int64_t j = 0; j < kJobs; ++j) {
      const std::string job_id = "job-" + std::to_string(j);
      EXPECT_EQ(runner.status(job_id).state, JobState::kFinished);
      EXPECT_EQ(model_bytes(runner.server(job_id).global_model()),
                solo[static_cast<std::size_t>(j)])
          << job_id << " diverged from its solo twin";
    }
  }
  core::set_compute_threads(old_budget);
}

// ---------------------------------------------------------------------------
// Durability: in-flight jobs survive a coordinator SIGKILL
// ---------------------------------------------------------------------------

class JobsCrashTest : public JobsTest {
 protected:
  /// fork + re-exec this binary as a two-job coordinator child.
  int run_child(const std::string& dir, const std::string& crash_point) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      if (crash_point.empty()) {
        ::unsetenv("CPPFLARE_CRASHPOINT");
      } else {
        ::setenv("CPPFLARE_CRASHPOINT", crash_point.c_str(), 1);
      }
      ::execl("/proc/self/exe", "jobs_test", "--jobs-child", dir.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    return status;
  }

  static std::vector<std::uint8_t> slurp(const std::string& file) {
    std::ifstream in(file, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
  }

  std::string fresh_dir(const std::string& label) {
    std::string clean = label;
    for (char& c : clean) {
      if (c == '.' || c == '@' || c == '/') c = '_';
    }
    const auto dir = root_ / clean;
    std::filesystem::create_directories(dir);
    return dir.string();
  }
};

TEST_F(JobsCrashTest, InFlightJobsResumeAfterCoordinatorKill) {
  if (kTsan) GTEST_SKIP() << "fork-based death tests are timing-fragile under TSan";
  // Never-crashed reference finals, one pair per scenario run.
  const std::string ref_dir = fresh_dir("ref");
  const int ref = run_child(ref_dir, "");
  ASSERT_TRUE(WIFEXITED(ref) && WEXITSTATUS(ref) == 0)
      << "reference run failed, status " << ref;
  const auto ref_a = slurp(ref_dir + "/final_job-a");
  const auto ref_b = slurp(ref_dir + "/final_job-b");
  ASSERT_FALSE(ref_a.empty());
  ASSERT_FALSE(ref_b.empty());

  for (const std::string point :
       {"journal.commit.before", "persist.rename.before"}) {
    SCOPED_TRACE(point);
    const std::string dir = fresh_dir(point);
    // Whichever job reaches the point first takes the whole coordinator
    // down — both jobs are in flight at the kill.
    const int killed = run_child(dir, point);
    ASSERT_TRUE(WIFSIGNALED(killed))
        << "child survived its crash point (status " << killed << ")";
    ASSERT_EQ(WTERMSIG(killed), SIGKILL);

    const int completed = run_child(dir, "");
    ASSERT_TRUE(WIFEXITED(completed) && WEXITSTATUS(completed) == 0)
        << "completer failed with status " << completed;
    EXPECT_EQ(slurp(dir + "/final_job-a"), ref_a)
        << "job-a diverged after kill/restart";
    EXPECT_EQ(slurp(dir + "/final_job-b"), ref_b)
        << "job-b diverged after kill/restart";
  }
}

}  // namespace
}  // namespace cppflare::flare

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--jobs-child") == 0) {
    return cppflare::flare::jobs_harness::child_main(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
