// Robustness fuzzing of every wire-format parser: random bytes, truncations
// and single-bit corruptions must produce a typed error (or a valid parse),
// never a crash, hang, or silent misread of authenticated content.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "flare/dxo.h"
#include "flare/messages.h"
#include "flare/secure_channel.h"
#include "nn/state_dict.h"

namespace cppflare {
namespace {

std::vector<std::uint8_t> random_bytes(core::Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return v;
}

nn::StateDict sample_dict() {
  nn::StateDict d;
  d.insert("layer.w", {{2, 3}, {1, 2, 3, 4, 5, 6}});
  d.insert("layer.b", {{3}, {0.5f, -0.5f, 0.25f}});
  return d;
}

TEST(FuzzStateDict, RandomBuffersNeverCrash) {
  core::Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const auto bytes = random_bytes(rng, static_cast<std::size_t>(
                                             rng.uniform_int(0, 200)));
    core::ByteReader r(bytes);
    try {
      (void)nn::StateDict::deserialize(r);
    } catch (const Error&) {
      // typed failure is the expected outcome
    }
  }
  SUCCEED();
}

TEST(FuzzStateDict, EveryTruncationFailsCleanly) {
  core::ByteWriter w;
  sample_dict().serialize(w);
  const auto& full = w.bytes();
  for (std::size_t len = 0; len < full.size(); ++len) {
    core::ByteReader r(full.data(), len);
    EXPECT_THROW((void)nn::StateDict::deserialize(r), Error) << "len=" << len;
  }
  // The untruncated buffer still parses.
  core::ByteReader ok(full);
  EXPECT_EQ(nn::StateDict::deserialize(ok), sample_dict());
}

TEST(FuzzDxo, RandomBuffersNeverCrash) {
  core::Rng rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    const auto bytes = random_bytes(rng, static_cast<std::size_t>(
                                             rng.uniform_int(0, 300)));
    core::ByteReader r(bytes);
    try {
      (void)flare::Dxo::deserialize(r);
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

TEST(FuzzMessages, RandomFramesNeverCrash) {
  core::Rng rng(3);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto frame = random_bytes(rng, static_cast<std::size_t>(
                                             rng.uniform_int(0, 120)));
    try {
      switch (flare::peek_type(frame)) {
        case flare::MsgType::kRegister: (void)flare::decode_register(frame); break;
        case flare::MsgType::kRegisterAck:
          (void)flare::decode_register_ack(frame);
          break;
        case flare::MsgType::kGetTask: (void)flare::decode_get_task(frame); break;
        case flare::MsgType::kTask: (void)flare::decode_task(frame); break;
        case flare::MsgType::kSubmitUpdate: (void)flare::decode_submit(frame); break;
        case flare::MsgType::kSubmitAck: (void)flare::decode_submit_ack(frame); break;
        case flare::MsgType::kError: (void)flare::decode_error(frame); break;
      }
    } catch (const Error&) {
    }
  }
  SUCCEED();
}

TEST(FuzzEnvelope, EverySingleBitFlipBreaksTheMac) {
  const std::vector<std::uint8_t> key(32, 0x42);
  const std::vector<std::uint8_t> payload = {10, 20, 30, 40, 50};
  const auto sealed = flare::seal("site-1", key, 9, payload);

  core::Rng rng(4);
  int verified_differently = 0;
  // Exhaustive over bytes, one random bit each (full exhaustive over bits
  // would be 8x slower for no extra signal).
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    auto corrupted = sealed;
    corrupted[i] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    try {
      (void)flare::open(corrupted, key);
      // A parse that *succeeds* after corruption would be a MAC bypass.
      ++verified_differently;
    } catch (const Error&) {
      // expected: ProtocolError (bad magic, truncation, or MAC failure)
    }
  }
  EXPECT_EQ(verified_differently, 0);
}

TEST(FuzzEnvelope, RandomGarbageNeverVerifies) {
  const std::vector<std::uint8_t> key(32, 0x24);
  core::Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    const auto garbage = random_bytes(rng, static_cast<std::size_t>(
                                               rng.uniform_int(0, 150)));
    EXPECT_THROW((void)flare::open(garbage, key), Error);
  }
}

TEST(FuzzRoundTrip, StateDictSurvivesRandomContents) {
  core::Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    nn::StateDict d;
    const int blobs = static_cast<int>(rng.uniform_int(1, 5));
    for (int b = 0; b < blobs; ++b) {
      const auto n = rng.uniform_int(1, 40);
      nn::ParamBlob blob;
      blob.shape = {n};
      for (std::int64_t i = 0; i < n; ++i) {
        blob.values.push_back(static_cast<float>(rng.normal()));
      }
      std::string blob_name = "p";
      blob_name += std::to_string(b);
      d.insert(blob_name, std::move(blob));
    }
    core::ByteWriter w;
    d.serialize(w);
    core::ByteReader r(w.bytes());
    EXPECT_EQ(nn::StateDict::deserialize(r), d);
  }
}

}  // namespace
}  // namespace cppflare
