#include "nn/state_dict.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace cppflare::nn {
namespace {

StateDict make_dict(float base) {
  StateDict d;
  d.insert("layer.weight", {{2, 2}, {base, base + 1, base + 2, base + 3}});
  d.insert("layer.bias", {{2}, {base * 10, base * 10 + 1}});
  return d;
}

TEST(StateDict, InsertAndLookup) {
  StateDict d = make_dict(1.0f);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.contains("layer.weight"));
  EXPECT_FALSE(d.contains("nope"));
  EXPECT_EQ(d.at("layer.bias").shape, (std::vector<std::int64_t>{2}));
  EXPECT_THROW(d.at("nope"), Error);
}

TEST(StateDict, DuplicateInsertThrows) {
  StateDict d = make_dict(1.0f);
  EXPECT_THROW(d.insert("layer.weight", {{1}, {0.0f}}), Error);
}

TEST(StateDict, TotalNumel) {
  EXPECT_EQ(make_dict(0.0f).total_numel(), 6);
}

TEST(StateDict, Congruence) {
  StateDict a = make_dict(1.0f), b = make_dict(9.0f);
  EXPECT_TRUE(a.congruent_with(b));  // shapes match, values differ
  StateDict c;
  c.insert("layer.weight", {{4}, {0, 0, 0, 0}});  // different shape
  c.insert("layer.bias", {{2}, {0, 0}});
  EXPECT_FALSE(a.congruent_with(c));
  StateDict d;
  d.insert("other", {{2}, {0, 0}});
  d.insert("layer.bias", {{2}, {0, 0}});
  EXPECT_FALSE(a.congruent_with(d));
}

TEST(StateDict, AxpyComputesWeightedSum) {
  StateDict a = make_dict(0.0f);
  StateDict b = make_dict(1.0f);
  a.axpy(2.0f, b);
  EXPECT_FLOAT_EQ(a.at("layer.weight").values[0], 0.0f + 2.0f * 1.0f);
  EXPECT_FLOAT_EQ(a.at("layer.weight").values[3], 3.0f + 2.0f * 4.0f);
  EXPECT_FLOAT_EQ(a.at("layer.bias").values[1], 1.0f + 2.0f * 11.0f);
}

TEST(StateDict, AxpyRejectsIncongruent) {
  StateDict a = make_dict(0.0f);
  StateDict b;
  b.insert("x", {{1}, {1.0f}});
  EXPECT_THROW(a.axpy(1.0f, b), Error);
}

TEST(StateDict, ScaleMultipliesAll) {
  StateDict a = make_dict(1.0f);
  a.scale(0.5f);
  EXPECT_FLOAT_EQ(a.at("layer.weight").values[1], 1.0f);
  EXPECT_FLOAT_EQ(a.at("layer.bias").values[0], 5.0f);
}

TEST(StateDict, ZerosLikeMatchesStructure) {
  StateDict a = make_dict(3.0f);
  StateDict z = a.zeros_like();
  EXPECT_TRUE(a.congruent_with(z));
  for (const auto& [k, blob] : z.entries()) {
    for (float v : blob.values) EXPECT_EQ(v, 0.0f);
  }
}

TEST(StateDict, SerializeRoundTrip) {
  StateDict a = make_dict(2.5f);
  core::ByteWriter w;
  a.serialize(w);
  core::ByteReader r(w.bytes());
  StateDict b = StateDict::deserialize(r);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(r.exhausted());
}

TEST(StateDict, DeserializeRejectsBadMagic) {
  core::ByteWriter w;
  w.write_u32(0x12345678);
  core::ByteReader r(w.bytes());
  EXPECT_THROW(StateDict::deserialize(r), SerializationError);
}

TEST(StateDict, DeserializeRejectsShapeValueMismatch) {
  core::ByteWriter w;
  w.write_u32(0x53444331);  // magic
  w.write_u32(1);
  w.write_string("p");
  w.write_i64_vector({3});         // claims 3 elements
  w.write_f32_vector({1.0f, 2.0f});  // provides 2
  core::ByteReader r(w.bytes());
  EXPECT_THROW(StateDict::deserialize(r), SerializationError);
}

TEST(StateDict, EmptyDictRoundTrip) {
  StateDict a;
  core::ByteWriter w;
  a.serialize(w);
  core::ByteReader r(w.bytes());
  EXPECT_EQ(StateDict::deserialize(r).size(), 0u);
}

}  // namespace
}  // namespace cppflare::nn
