// Fault-tolerance suite (DESIGN.md §9).
//
// Exercises the whole failure model end to end: the fault-injection
// transport decorator, client retry/backoff and re-registration, server
// round deadlines / liveness eviction / abort, and crash-restart resume
// from a checkpoint. The headline property is determinism: because every
// fault source is seeded and FedAvg reduces in site order, a federation
// hammered with drops, delays, duplicates and disconnects converges
// bit-for-bit identical to a fault-free run.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <future>
#include <thread>
#include <unistd.h>

#include "core/backoff.h"
#include "core/error.h"
#include "core/logging.h"
#include "flare/client.h"
#include "flare/faults.h"
#include "flare/messages.h"
#include "flare/provision.h"
#include "flare/secure_channel.h"
#include "flare/server.h"
#include "flare/simulator.h"

namespace cppflare::flare {
namespace {

class FaultsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
    dir_ = std::filesystem::temp_directory_path() /
           ("cppflare_faults_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

nn::StateDict dict_of(std::vector<float> w) {
  nn::StateDict d;
  d.insert("w", {{static_cast<std::int64_t>(w.size())}, std::move(w)});
  return d;
}

nn::StateDict tiny_model() { return dict_of({0.0f, 0.0f, 0.0f, 0.0f}); }

/// Bitwise model equality — the acceptance bar for fault-tolerant runs.
bool bit_equal(const nn::StateDict& a, const nn::StateDict& b) {
  if (!a.congruent_with(b)) return false;
  auto ia = a.entries().begin();
  auto ib = b.entries().begin();
  for (; ia != a.entries().end(); ++ia, ++ib) {
    if (std::memcmp(ia->second.values.data(), ib->second.values.data(),
                    ia->second.values.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

/// Deterministic learner: nudges every weight halfway toward a per-site
/// target. The result of a round is a pure function of the incoming model,
/// so any two runs that execute the same rounds agree bit-for-bit.
class NudgeLearner : public Learner {
 public:
  NudgeLearner(std::string site, float target, std::int64_t train_ms = 0)
      : site_(std::move(site)), target_(target), train_ms_(train_ms) {}

  Dxo train(const Dxo& global, const FLContext&) override {
    core::Backoff::sleep_ms(train_ms_);
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v += 0.5f * (target_ - v);
    }
    Dxo update(DxoKind::kWeights, updated);
    update.set_meta_int(Dxo::kMetaNumSamples, 10);
    update.set_meta_double(Dxo::kMetaTrainLoss, 1.0);
    update.set_meta_double(Dxo::kMetaValidAcc, 0.5);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float target_;
  std::int64_t train_ms_;
};

SimulatorRunner make_runner(SimulatorConfig config, std::int64_t train_ms = 0) {
  return SimulatorRunner(
      config, tiny_model(), std::make_unique<FedAvgAggregator>(true),
      [train_ms](std::int64_t i, const std::string& name) {
        return std::make_shared<NudgeLearner>(name, static_cast<float>(i),
                                              train_ms);
      });
}

// ---------------------------------------------------------------------------
// FaultyConnection unit behavior
// ---------------------------------------------------------------------------

class CountingEcho : public Connection {
 public:
  std::vector<std::uint8_t> call(const std::vector<std::uint8_t>& req) override {
    calls += 1;
    return req;
  }
  int calls = 0;
};

TEST_F(FaultsTest, DropAlternatesRequestAndResponse) {
  auto inner = std::make_unique<CountingEcho>();
  auto* raw = inner.get();
  FaultPlan plan;
  plan.drop_prob = 1.0;
  plan.max_faults = 2;
  FaultyConnection conn(std::move(inner), plan);
  // First drop loses the request: the server never sees it.
  EXPECT_THROW(conn.call({1}), TransportError);
  EXPECT_EQ(raw->calls, 0);
  // Second drop loses the response: the server DID process the frame.
  EXPECT_THROW(conn.call({2}), TransportError);
  EXPECT_EQ(raw->calls, 1);
  // Fault budget spent: clean delivery from here on.
  EXPECT_EQ(conn.call({3}), (std::vector<std::uint8_t>{3}));
  EXPECT_EQ(raw->calls, 2);
  EXPECT_EQ(conn.stats().dropped_requests, 1);
  EXPECT_EQ(conn.stats().dropped_responses, 1);
}

TEST_F(FaultsTest, DisconnectOnCallKillsConnectionPermanently) {
  auto inner = std::make_unique<CountingEcho>();
  FaultPlan plan;
  plan.disconnect_on_call = 1;
  FaultyConnection conn(std::move(inner), plan);
  EXPECT_EQ(conn.call({1}), (std::vector<std::uint8_t>{1}));
  EXPECT_FALSE(conn.disconnected());
  EXPECT_THROW(conn.call({2}), TransportError);
  EXPECT_TRUE(conn.disconnected());
  // Every later call fails until the owner reconnects via its factory.
  EXPECT_THROW(conn.call({3}), TransportError);
  EXPECT_EQ(conn.stats().disconnects, 1);
}

TEST_F(FaultsTest, CorruptFlipsExactlyOneBit) {
  auto inner = std::make_unique<CountingEcho>();
  FaultPlan plan;
  plan.corrupt_prob = 1.0;
  plan.max_faults = 1;
  FaultyConnection conn(std::move(inner), plan);
  const std::vector<std::uint8_t> msg = {0x11, 0x22, 0x33, 0x44};
  const std::vector<std::uint8_t> echoed = conn.call(msg);
  ASSERT_EQ(echoed.size(), msg.size());
  int flipped = 0;
  for (std::size_t i = 0; i < msg.size(); ++i) {
    std::uint8_t diff = msg[i] ^ echoed[i];
    while (diff != 0) {
      flipped += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped, 1);
  EXPECT_EQ(conn.stats().corruptions, 1);
  EXPECT_EQ(conn.call(msg), msg);  // budget spent, clean again
}

TEST_F(FaultsTest, DuplicateDeliversFrameTwice) {
  auto inner = std::make_unique<CountingEcho>();
  auto* raw = inner.get();
  FaultPlan plan;
  plan.duplicate_prob = 1.0;
  plan.max_faults = 1;
  FaultyConnection conn(std::move(inner), plan);
  EXPECT_EQ(conn.call({7}), (std::vector<std::uint8_t>{7}));
  EXPECT_EQ(raw->calls, 2);  // delivered twice, duplicate response discarded
  EXPECT_EQ(conn.stats().duplicates, 1);
}

TEST_F(FaultsTest, FaultScheduleIsDeterministicPerSeed) {
  FaultPlan plan;
  plan.seed = 99;
  plan.drop_prob = 0.3;
  plan.delay_prob = 0.2;
  plan.delay_ms = 0;
  plan.corrupt_prob = 0.1;
  auto run_schedule = [&plan] {
    FaultyConnection conn(std::make_unique<CountingEcho>(), plan);
    for (int i = 0; i < 60; ++i) {
      try {
        conn.call({static_cast<std::uint8_t>(i)});
      } catch (const TransportError&) {
      }
    }
    return conn.stats();
  };
  const FaultStats a = run_schedule();
  const FaultStats b = run_schedule();
  EXPECT_GT(a.total_faults(), 0);
  EXPECT_EQ(a.dropped_requests, b.dropped_requests);
  EXPECT_EQ(a.dropped_responses, b.dropped_responses);
  EXPECT_EQ(a.delays, b.delays);
  EXPECT_EQ(a.corruptions, b.corruptions);
}

// ---------------------------------------------------------------------------
// core::Backoff
// ---------------------------------------------------------------------------

TEST_F(FaultsTest, BackoffGrowsMultiplicativelyAndCaps) {
  core::Backoff backoff({10, 40, 2.0, -1, 0.0});
  EXPECT_EQ(backoff.next_delay_ms(), 10);
  EXPECT_EQ(backoff.next_delay_ms(), 20);
  EXPECT_EQ(backoff.next_delay_ms(), 40);
  EXPECT_EQ(backoff.next_delay_ms(), 40);  // capped
  backoff.reset();
  EXPECT_EQ(backoff.next_delay_ms(), 10);
}

TEST_F(FaultsTest, BackoffExhaustsAfterMaxRetries) {
  core::Backoff backoff({1, 1, 2.0, 2, 0.0});
  EXPECT_FALSE(backoff.exhausted());
  EXPECT_TRUE(backoff.try_again());
  EXPECT_TRUE(backoff.try_again());
  EXPECT_TRUE(backoff.exhausted());
  EXPECT_FALSE(backoff.try_again());
  EXPECT_EQ(backoff.retries(), 2);
}

TEST_F(FaultsTest, BackoffFastFirstRetryIsImmediateThenExponential) {
  core::Backoff backoff({10, 40, 2.0, -1, 0.0, /*fast_first_retry=*/true});
  EXPECT_EQ(backoff.next_delay_ms(), 0);  // first retry of the episode is free
  EXPECT_EQ(backoff.next_delay_ms(), 10);
  EXPECT_EQ(backoff.next_delay_ms(), 20);
  backoff.reset();  // success rearms the free retry
  EXPECT_EQ(backoff.next_delay_ms(), 0);
  EXPECT_EQ(backoff.next_delay_ms(), 10);
}

TEST_F(FaultsTest, BackoffJitterIsBoundedAndSeeded) {
  core::Backoff a({100, 1000, 2.0, -1, 0.5}, 42);
  core::Backoff b({100, 1000, 2.0, -1, 0.5}, 42);
  for (int i = 0; i < 8; ++i) {
    const std::int64_t da = a.next_delay_ms();
    EXPECT_GE(da, 50);
    EXPECT_LE(da, 1500);
    EXPECT_EQ(da, b.next_delay_ms());  // same seed, same schedule
  }
}

// ---------------------------------------------------------------------------
// Client resilience
// ---------------------------------------------------------------------------

class DeadConnection : public Connection {
 public:
  std::vector<std::uint8_t> call(const std::vector<std::uint8_t>&) override {
    throw TransportError("dead connection");
  }
};

TEST_F(FaultsTest, ClientGivesUpAfterRetryBudgetAgainstDeadServer) {
  const auto registry = Provisioner("dead-job", 3).provision_sites(1);
  ClientConfig config;
  config.job_id = "dead-job";
  config.retry = {1, 2, 2.0, 3, 0.0};  // 1 attempt + 3 retries
  std::int64_t connections_built = 0;
  FederatedClient client(
      config, registry.at("site-1"),
      [&connections_built]() -> std::unique_ptr<Connection> {
        connections_built += 1;
        return std::make_unique<DeadConnection>();
      },
      std::make_shared<NudgeLearner>("site-1", 1.0f));
  EXPECT_THROW(client.run(), TransportError);
  EXPECT_EQ(client.transport_failures(), 4);  // every attempt failed
  EXPECT_EQ(client.reconnects(), 3);          // rebuilt before each retry
  EXPECT_EQ(connections_built, 4);
}

// ---------------------------------------------------------------------------
// Server degradation: deadlines, eviction, abort
// ---------------------------------------------------------------------------

/// Manual-dispatcher harness: drives the server protocol one sealed frame
/// at a time so tests control exactly who is heard from and when.
class ManualFederation {
 public:
  ManualFederation(ServerConfig config, std::int64_t num_sites)
      : registry_(Provisioner(config.job_id, 17).provision_sites(num_sites)),
        server_(std::make_unique<FederatedServer>(
            config, registry_, dict_of({0.0f, 0.0f}),
            std::make_unique<FedAvgAggregator>(true))),
        dispatcher_(server_->dispatcher()) {}

  FederatedServer& server() { return *server_; }

  std::vector<std::uint8_t> call(const std::string& site,
                                 const std::vector<std::uint8_t>& frame) {
    const Credential& cred = registry_.at(site);
    const auto response =
        dispatcher_(seal(cred.name, cred.secret, seq_[site].next(), frame));
    return open(response, cred.secret).payload;
  }

  std::string register_site(const std::string& site) {
    const RegisterAck ack = decode_register_ack(
        call(site, pack(RegisterRequest{site, registry_.at(site).token})));
    EXPECT_TRUE(ack.accepted);
    sessions_[site] = ack.session_id;
    return ack.session_id;
  }

  TaskMessage get_task(const std::string& site) {
    return decode_task(call(site, pack(GetTaskRequest{sessions_.at(site)})));
  }

  SubmitAck submit(const std::string& site, std::int64_t round,
                   std::vector<float> weights) {
    SubmitUpdateRequest req;
    req.session_id = sessions_.at(site);
    req.round = round;
    req.payload = Dxo(DxoKind::kWeights, dict_of(std::move(weights)));
    req.payload.set_meta_int(Dxo::kMetaNumSamples, 10);
    return decode_submit_ack(call(site, pack(req)));
  }

 private:
  std::map<std::string, Credential> registry_;
  std::unique_ptr<FederatedServer> server_;
  Dispatcher dispatcher_;
  std::map<std::string, SequenceSource> seq_;
  std::map<std::string, std::string> sessions_;
};

TEST_F(FaultsTest, WaitUntilFinishedWakesOnAbort) {
  ServerConfig config;
  config.job_id = "abort-job";
  config.expected_clients = 1;
  config.min_clients = 1;
  ManualFederation fed(config, 1);
  std::thread aborter([&fed] {
    core::Backoff::sleep_ms(50);
    fed.server().abort("test abort");
  });
  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = fed.server().wait_until_finished(10000);
  const auto waited_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  aborter.join();
  EXPECT_FALSE(ok);
  EXPECT_LT(waited_ms, 5000);  // woke on the abort, not the timeout
  EXPECT_TRUE(fed.server().aborted());
  EXPECT_EQ(fed.server().abort_reason(), "test abort");
}

TEST_F(FaultsTest, DeadlineClosesRoundAtMinClients) {
  ServerConfig config;
  config.job_id = "deadline-job";
  config.num_rounds = 1;
  config.expected_clients = 3;
  config.min_clients = 2;
  config.round_deadline_ms = 60;
  ManualFederation fed(config, 3);
  for (const std::string site : {"site-1", "site-2", "site-3"}) {
    fed.register_site(site);
  }
  EXPECT_TRUE(fed.submit("site-1", 0, {1.0f, 1.0f}).accepted);
  EXPECT_TRUE(fed.submit("site-2", 0, {3.0f, 3.0f}).accepted);
  // Two of three reported; the round stays open until the deadline.
  EXPECT_FALSE(fed.server().finished());
  core::Backoff::sleep_ms(80);
  // Any traffic past the deadline closes the round with min_clients.
  const TaskMessage task = fed.get_task("site-1");
  EXPECT_EQ(task.task, TaskKind::kStop);
  EXPECT_TRUE(fed.server().finished());
  const auto history = fed.server().history();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].num_contributions, 2);
  EXPECT_TRUE(history[0].deadline_fired);
  EXPECT_EQ(fed.server().global_model().at("w").values[0], 2.0f);
}

TEST_F(FaultsTest, DeadlineBelowMinClientsAbortsRun) {
  ServerConfig config;
  config.job_id = "abort-deadline-job";
  config.num_rounds = 2;
  config.expected_clients = 2;
  config.min_clients = 2;
  config.round_deadline_ms = 50;
  ManualFederation fed(config, 2);
  fed.register_site("site-1");
  fed.register_site("site-2");
  EXPECT_TRUE(fed.submit("site-1", 0, {1.0f, 1.0f}).accepted);
  core::Backoff::sleep_ms(70);
  // One contribution < min_clients when the deadline fires: the run dies.
  const TaskMessage task = fed.get_task("site-2");
  EXPECT_EQ(task.task, TaskKind::kStop);
  EXPECT_TRUE(fed.server().aborted());
  EXPECT_NE(fed.server().abort_reason().find("deadline"), std::string::npos);
  EXPECT_FALSE(fed.server().wait_until_finished(10));
  // Late work against an aborted run is refused.
  EXPECT_FALSE(fed.submit("site-2", 0, {9.0f, 9.0f}).accepted);
}

TEST_F(FaultsTest, DeadSiteEvictedThenReadmittedOnReturn) {
  ServerConfig config;
  config.job_id = "evict-job";
  config.num_rounds = 2;
  config.expected_clients = 3;
  config.min_clients = 1;
  config.liveness_timeout_ms = 60;
  ManualFederation fed(config, 3);
  for (const std::string site : {"site-1", "site-2", "site-3"}) {
    fed.register_site(site);
  }
  EXPECT_TRUE(fed.submit("site-1", 0, {1.0f, 1.0f}).accepted);
  EXPECT_TRUE(fed.submit("site-2", 0, {3.0f, 3.0f}).accepted);
  EXPECT_FALSE(fed.server().finished());  // waiting on site-3
  core::Backoff::sleep_ms(80);
  // site-3 has been silent past the liveness timeout: the next traffic
  // evicts it, which shrinks the quorum to the two live sites and closes
  // round 0 immediately.
  const TaskMessage t1 = fed.get_task("site-1");
  auto history = fed.server().history();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].num_contributions, 2);
  EXPECT_EQ(history[0].evicted_sites, 1);
  EXPECT_FALSE(history[0].deadline_fired);
  EXPECT_EQ(fed.server().evicted_sites(),
            (std::vector<std::string>{"site-3"}));
  EXPECT_EQ(t1.task, TaskKind::kTrain);
  EXPECT_EQ(t1.round, 1);

  // site-3 comes back with its round-0 contribution: counted as late
  // telemetry on the closed round, and the site re-admitted to the quorum.
  const SubmitAck late = fed.submit("site-3", 0, {5.0f, 5.0f});
  EXPECT_FALSE(late.accepted);
  EXPECT_EQ(late.message, "stale round");
  EXPECT_TRUE(fed.server().evicted_sites().empty());
  EXPECT_EQ(fed.server().history()[0].late_contributions, 1);

  // Round 1 now requires all three again.
  EXPECT_TRUE(fed.submit("site-1", 1, {1.0f, 1.0f}).accepted);
  EXPECT_TRUE(fed.submit("site-2", 1, {3.0f, 3.0f}).accepted);
  EXPECT_FALSE(fed.server().finished());
  EXPECT_TRUE(fed.submit("site-3", 1, {5.0f, 5.0f}).accepted);
  EXPECT_TRUE(fed.server().finished());
  history = fed.server().history();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[1].num_contributions, 3);
  EXPECT_EQ(history[1].evicted_sites, 0);
}

TEST_F(FaultsTest, ResumeRejectsCheckpointFromOtherJob) {
  Checkpoint foreign;
  foreign.job_id = "some-other-job";
  foreign.round = 1;
  foreign.model = dict_of({0.0f, 0.0f});
  ServerConfig config;
  config.job_id = "this-job";
  const auto registry = Provisioner("this-job", 5).provision_sites(1);
  EXPECT_THROW(FederatedServer(config, registry, dict_of({0.0f, 0.0f}),
                               std::make_unique<FedAvgAggregator>(true), nullptr,
                               foreign),
               ConfigError);
}

// ---------------------------------------------------------------------------
// End-to-end convergence under injected faults
// ---------------------------------------------------------------------------

/// The acceptance bar: an 8-site TCP federation with 10% frame drops on
/// every link plus one hard mid-run disconnect produces bit-for-bit the
/// same global model as the fault-free run.
TEST_F(FaultsTest, EightSiteTcpWithDropsAndDisconnectMatchesCleanRun) {
  SimulatorConfig config;
  config.num_clients = 8;
  config.num_rounds = 5;
  config.use_tcp = true;

  SimulatorRunner clean = make_runner(config);
  const SimulationResult clean_result = clean.run();

  SimulatorRunner faulty = make_runner(config);
  faulty.set_fault_planner(
      [](std::int64_t index, const std::string&,
         std::int64_t incarnation) -> std::optional<FaultPlan> {
        FaultPlan plan;
        plan.seed = 0xfa017 + static_cast<std::uint64_t>(index) * 1000 +
                    static_cast<std::uint64_t>(incarnation);
        plan.drop_prob = 0.1;
        if (index == 2 && incarnation == 0) {
          plan.disconnect_on_call = 7;  // hard mid-run connection loss
        }
        return plan;
      });
  const SimulationResult faulty_result = faulty.run();

  EXPECT_FALSE(faulty_result.aborted);
  EXPECT_TRUE(faulty_result.failed_sites.empty());
  ASSERT_EQ(faulty_result.history.size(), 5u);
  for (const RoundMetrics& m : faulty_result.history) {
    EXPECT_EQ(m.num_contributions, 8);
  }
  EXPECT_TRUE(bit_equal(clean_result.final_model, faulty_result.final_model));
}

TEST_F(FaultsTest, ConvergesUnderEachFaultModeInProc) {
  SimulatorConfig config;
  config.num_clients = 4;
  config.num_rounds = 4;
  SimulatorRunner clean = make_runner(config);
  const nn::StateDict reference = clean.run().final_model;

  struct Mode {
    const char* name;
    FaultPlan plan;
  };
  std::vector<Mode> modes(4);
  modes[0].name = "drop";
  modes[0].plan.drop_prob = 0.15;
  modes[1].name = "delay";
  modes[1].plan.delay_prob = 0.3;
  modes[1].plan.delay_ms = 3;
  modes[2].name = "duplicate";
  modes[2].plan.duplicate_prob = 0.2;
  modes[3].name = "corrupt";
  modes[3].plan.corrupt_prob = 0.15;

  for (const Mode& mode : modes) {
    SCOPED_TRACE(mode.name);
    SimulatorRunner runner = make_runner(config);
    runner.set_fault_planner(
        [&mode](std::int64_t index, const std::string&,
                std::int64_t incarnation) -> std::optional<FaultPlan> {
          FaultPlan plan = mode.plan;
          plan.seed = 0xb0de + static_cast<std::uint64_t>(index) * 7919 +
                      static_cast<std::uint64_t>(incarnation);
          return plan;
        });
    const SimulationResult result = runner.run();
    EXPECT_FALSE(result.aborted);
    EXPECT_TRUE(result.failed_sites.empty());
    EXPECT_TRUE(bit_equal(reference, result.final_model));
  }
}

TEST_F(FaultsTest, PartitionedSiteDegradesToMinClients) {
  SimulatorConfig config;
  config.num_clients = 4;
  config.num_rounds = 2;
  config.min_clients = 3;
  config.round_deadline_ms = 250;
  config.client_retry = {5, 40, 2.0, 3, 0.0};
  SimulatorRunner runner = make_runner(config);
  // site-4 registers cleanly, then its link dies for good: the first
  // connection drops after a couple of calls and every reconnect is a
  // black hole that swallows all requests.
  runner.set_fault_planner(
      [](std::int64_t index, const std::string&,
         std::int64_t incarnation) -> std::optional<FaultPlan> {
        if (index != 3) return std::nullopt;
        FaultPlan plan;
        plan.seed = 0xdead + static_cast<std::uint64_t>(incarnation);
        if (incarnation == 0) {
          plan.disconnect_on_call = 2;
        } else {
          plan.drop_prob = 1.0;
        }
        return plan;
      });
  const SimulationResult result = runner.run();
  EXPECT_FALSE(result.aborted);
  EXPECT_EQ(result.failed_sites,
            (std::vector<std::string>{"site-4"}));
  ASSERT_EQ(result.history.size(), 2u);
  for (const RoundMetrics& m : result.history) {
    EXPECT_EQ(m.num_contributions, 3);
    EXPECT_TRUE(m.deadline_fired);
  }
}

// ---------------------------------------------------------------------------
// Crash-restart resume
// ---------------------------------------------------------------------------

TEST_F(FaultsTest, KilledServerResumesFromCheckpointBitForBit) {
  const std::string checkpoint = path("resume.bin");
  SimulatorConfig config;
  config.num_clients = 3;
  config.num_rounds = 6;

  // Reference: the same federation, never interrupted.
  SimulatorRunner uninterrupted = make_runner(config);
  const nn::StateDict reference = uninterrupted.run().final_model;

  // Phase 1: run with persistence and kill the server mid-flight, right
  // after round 2 completes (simulating an operator crash between rounds).
  config.persist_path = checkpoint;
  std::int64_t killed_after = -1;
  {
    SimulatorRunner runner = make_runner(config, /*train_ms=*/10);
    std::promise<void> round_two_done;
    runner.server().add_round_observer(
        [&round_two_done](std::int64_t round, const nn::StateDict&,
                          const RoundMetrics&) {
          if (round == 2) round_two_done.set_value();
        });
    std::thread killer([&runner, &round_two_done] {
      round_two_done.get_future().wait();
      runner.server().abort("operator kill");
    });
    const SimulationResult first = runner.run();
    killer.join();
    ASSERT_TRUE(first.aborted);
    EXPECT_EQ(first.abort_reason, "operator kill");
    ASSERT_GE(first.history.size(), 3u);
    ASSERT_LT(first.history.size(), 6u);
    killed_after = static_cast<std::int64_t>(first.history.size()) - 1;
  }

  // Phase 2: a fresh server resumes from the checkpoint and finishes the
  // remaining rounds; the result matches the uninterrupted run exactly.
  config.resume = true;
  SimulatorRunner resumed = make_runner(config);
  const SimulationResult second = resumed.run();
  EXPECT_FALSE(second.aborted);
  EXPECT_EQ(second.resumed_from_round, killed_after);
  ASSERT_EQ(second.history.size(), 6u);
  for (std::size_t i = 0; i < second.history.size(); ++i) {
    EXPECT_EQ(second.history[i].round, static_cast<std::int64_t>(i));
    EXPECT_EQ(second.history[i].num_contributions, 3);
  }
  EXPECT_TRUE(bit_equal(reference, second.final_model));
}

TEST_F(FaultsTest, ResumeOfCompletedRunIsANoOp) {
  const std::string checkpoint = path("complete.bin");
  SimulatorConfig config;
  config.num_clients = 2;
  config.num_rounds = 3;
  config.persist_path = checkpoint;
  SimulatorRunner first = make_runner(config);
  const SimulationResult done = first.run();
  ASSERT_EQ(done.history.size(), 3u);

  config.resume = true;
  SimulatorRunner again = make_runner(config);
  const SimulationResult replay = again.run();
  EXPECT_FALSE(replay.aborted);
  EXPECT_EQ(replay.resumed_from_round, 2);
  EXPECT_EQ(replay.history.size(), 3u);  // nothing re-run
  EXPECT_TRUE(bit_equal(done.final_model, replay.final_model));
}

}  // namespace
}  // namespace cppflare::flare
