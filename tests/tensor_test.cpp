#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "test_util.h"

namespace cppflare::tensor {
namespace {

using cppflare::testing::expect_tensor_eq;

TEST(TensorBasics, ZerosHasShapeAndZeroData) {
  Tensor t = Tensor::zeros({2, 3});
  EXPECT_EQ(t.shape(), (Shape{2, 3}));
  EXPECT_EQ(t.numel(), 6);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(t.data()[i], 0.0f);
}

TEST(TensorBasics, FullFillsValue) {
  Tensor t = Tensor::full({4}, 2.5f);
  expect_tensor_eq(t, {2.5f, 2.5f, 2.5f, 2.5f});
}

TEST(TensorBasics, FromDataValidatesCount) {
  EXPECT_THROW(Tensor::from_data({2, 2}, {1.0f, 2.0f}), ShapeError);
  Tensor t = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.data()[3], 4.0f);
}

TEST(TensorBasics, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::scalar(3.5f).item(), 3.5f);
  Tensor t = Tensor::zeros({2});
  EXPECT_THROW(t.item(), ShapeError);
}

TEST(TensorBasics, SizeHandlesNegativeAxes) {
  Tensor t = Tensor::zeros({2, 3, 5});
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(-1), 5);
  EXPECT_EQ(t.size(-3), 2);
  EXPECT_THROW(t.size(3), ShapeError);
}

TEST(TensorBasics, RandnDeterministicUnderSeed) {
  core::Rng a(42), b(42);
  Tensor x = Tensor::randn({8}, a);
  Tensor y = Tensor::randn({8}, b);
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_EQ(x.data()[i], y.data()[i]);
}

TEST(TensorBasics, NumelOfEmptyShapeIsOne) {
  EXPECT_EQ(numel_of({}), 1);
  EXPECT_EQ(numel_of({3, 0}), 0);
}

TEST(TensorBasics, ShapeToString) {
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_EQ(shape_to_string({}), "[]");
}

TEST(TensorOpsForward, AddSubMul) {
  Tensor a = Tensor::from_data({3}, {1, 2, 3});
  Tensor b = Tensor::from_data({3}, {10, 20, 30});
  expect_tensor_eq(add(a, b), {11, 22, 33});
  expect_tensor_eq(sub(b, a), {9, 18, 27});
  expect_tensor_eq(mul(a, b), {10, 40, 90});
}

TEST(TensorOpsForward, ShapeMismatchThrows) {
  Tensor a = Tensor::zeros({2});
  Tensor b = Tensor::zeros({3});
  EXPECT_THROW(add(a, b), ShapeError);
  EXPECT_THROW(mul(a, b), ShapeError);
}

TEST(TensorOpsForward, ScalarOps) {
  Tensor a = Tensor::from_data({2}, {1, -2});
  expect_tensor_eq(add_scalar(a, 0.5f), {1.5f, -1.5f});
  expect_tensor_eq(mul_scalar(a, -2.0f), {-2, 4});
  expect_tensor_eq(neg(a), {-1, 2});
}

TEST(TensorOpsForward, AddBiasBroadcastsOverRows) {
  Tensor x = Tensor::from_data({2, 3}, {0, 0, 0, 1, 1, 1});
  Tensor b = Tensor::from_data({3}, {1, 2, 3});
  expect_tensor_eq(add_bias(x, b), {1, 2, 3, 2, 3, 4});
  Tensor bad = Tensor::from_data({2}, {1, 2});
  EXPECT_THROW(add_bias(x, bad), ShapeError);
}

TEST(TensorOpsForward, Activations) {
  Tensor a = Tensor::from_data({3}, {-1, 0, 2});
  expect_tensor_eq(relu(a), {0, 0, 2});
  expect_tensor_eq(tanh_op(a), {std::tanh(-1.0f), 0.0f, std::tanh(2.0f)}, 1e-6f);
  expect_tensor_eq(sigmoid(a),
                   {1.0f / (1.0f + std::exp(1.0f)), 0.5f,
                    1.0f / (1.0f + std::exp(-2.0f))},
                   1e-6f);
}

TEST(TensorOpsForward, GeluMatchesReference) {
  // Reference values from the tanh-approximation formula.
  Tensor a = Tensor::from_data({3}, {-1.0f, 0.0f, 1.0f});
  Tensor y = gelu(a);
  EXPECT_NEAR(y.data()[0], -0.158808f, 1e-4f);
  EXPECT_NEAR(y.data()[1], 0.0f, 1e-6f);
  EXPECT_NEAR(y.data()[2], 0.841192f, 1e-4f);
}

TEST(TensorOpsForward, MatmulSmall) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_data({3, 2}, {7, 8, 9, 10, 11, 12});
  expect_tensor_eq(matmul(a, b), {58, 64, 139, 154});
  EXPECT_THROW(matmul(a, a), ShapeError);
}

TEST(TensorOpsForward, LinearMatchesManual) {
  // y = x W^T + b with W in [out,in] layout.
  Tensor x = Tensor::from_data({1, 2}, {1, 2});
  Tensor w = Tensor::from_data({3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor b = Tensor::from_data({3}, {0.5f, -0.5f, 0.0f});
  expect_tensor_eq(linear(x, w, b), {1.5f, 1.5f, 3.0f});
  expect_tensor_eq(linear(x, w, Tensor{}), {1.0f, 2.0f, 3.0f});
}

TEST(TensorOpsForward, BmmAndBmmNt) {
  // batch 2 of 1x2 @ 2x1.
  Tensor a = Tensor::from_data({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_data({2, 2, 1}, {5, 6, 7, 8});
  expect_tensor_eq(bmm(a, b), {17, 53});
  // bmm_nt: same result via transposed layout of b.
  Tensor bt = Tensor::from_data({2, 1, 2}, {5, 6, 7, 8});
  expect_tensor_eq(bmm_nt(a, bt), {17, 53});
}

TEST(TensorOpsForward, ReshapePreservesDataOrder) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = reshape(a, {3, 2});
  expect_tensor_eq(r, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  EXPECT_THROW(reshape(a, {4, 2}), ShapeError);
}

TEST(TensorOpsForward, PermuteTransposes2d) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = permute(a, {1, 0});
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  expect_tensor_eq(t, {1, 4, 2, 5, 3, 6});
}

TEST(TensorOpsForward, PermuteHeadSplitRoundTrip) {
  // [B=1,T=2,h=2,d=2] -> [B,h,T,d] -> back.
  Tensor a = Tensor::from_data({1, 2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor p = permute(a, {0, 2, 1, 3});
  expect_tensor_eq(p, {0, 1, 4, 5, 2, 3, 6, 7});
  Tensor back = permute(p, {0, 2, 1, 3});
  expect_tensor_eq(back, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_THROW(permute(a, {0, 0, 1, 3}), ShapeError);
  EXPECT_THROW(permute(a, {0, 1}), ShapeError);
}

TEST(TensorOpsForward, SelectDim1) {
  Tensor a = Tensor::from_data({2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  expect_tensor_eq(select_dim1(a, 0), {0, 1, 4, 5});
  expect_tensor_eq(select_dim1(a, 1), {2, 3, 6, 7});
  EXPECT_THROW(select_dim1(a, 2), ShapeError);
}

TEST(TensorOpsForward, SliceCols) {
  Tensor a = Tensor::from_data({2, 4}, {0, 1, 2, 3, 4, 5, 6, 7});
  expect_tensor_eq(slice_cols(a, 1, 2), {1, 2, 5, 6});
  EXPECT_THROW(slice_cols(a, 3, 2), ShapeError);
  EXPECT_THROW(slice_cols(a, -1, 2), ShapeError);
}

TEST(TensorOpsForward, ConcatCols) {
  Tensor a = Tensor::from_data({2, 1}, {1, 2});
  Tensor b = Tensor::from_data({2, 2}, {3, 4, 5, 6});
  expect_tensor_eq(concat_cols({a, b}), {1, 3, 4, 2, 5, 6});
  EXPECT_THROW(concat_cols({}), ShapeError);
}

TEST(TensorOpsForward, StackDim1) {
  Tensor s0 = Tensor::from_data({2, 2}, {0, 1, 2, 3});
  Tensor s1 = Tensor::from_data({2, 2}, {4, 5, 6, 7});
  Tensor st = stack_dim1({s0, s1});
  EXPECT_EQ(st.shape(), (Shape{2, 2, 2}));
  expect_tensor_eq(st, {0, 1, 4, 5, 2, 3, 6, 7});
}

TEST(TensorOpsForward, GatherDim1) {
  Tensor a = Tensor::from_data({2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  expect_tensor_eq(gather_dim1(a, {1, 0}), {2, 3, 4, 5});
  EXPECT_THROW(gather_dim1(a, {2, 0}), ShapeError);
  EXPECT_THROW(gather_dim1(a, {0}), ShapeError);
}

TEST(TensorOpsForward, Reductions) {
  Tensor a = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(sum_all(a).item(), 10.0f);
  EXPECT_FLOAT_EQ(mean_all(a).item(), 2.5f);
}

TEST(TensorOpsForward, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 1000, 1000, 1000});
  Tensor s = softmax_lastdim(a);
  for (int r = 0; r < 2; ++r) {
    float sum = 0;
    for (int c = 0; c < 3; ++c) sum += s.data()[r * 3 + c];
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  // Large inputs must not overflow (max-subtraction).
  EXPECT_NEAR(s.data()[3], 1.0f / 3.0f, 1e-5f);
}

TEST(TensorOpsForward, SoftmaxOrdersProbabilities) {
  Tensor a = Tensor::from_data({1, 3}, {1, 3, 2});
  Tensor s = softmax_lastdim(a);
  EXPECT_GT(s.data()[1], s.data()[2]);
  EXPECT_GT(s.data()[2], s.data()[0]);
}

TEST(TensorOpsForward, LayerNormNormalizesRows) {
  Tensor x = Tensor::from_data({2, 4}, {1, 2, 3, 4, -2, 0, 2, 4});
  Tensor gamma = Tensor::full({4}, 1.0f);
  Tensor beta = Tensor::zeros({4});
  Tensor y = layer_norm(x, gamma, beta);
  for (int r = 0; r < 2; ++r) {
    float mean = 0, var = 0;
    for (int c = 0; c < 4; ++c) mean += y.data()[r * 4 + c];
    mean /= 4;
    for (int c = 0; c < 4; ++c) {
      const float d = y.data()[r * 4 + c] - mean;
      var += d * d;
    }
    var /= 4;
    EXPECT_NEAR(mean, 0.0f, 1e-5f);
    EXPECT_NEAR(var, 1.0f, 1e-3f);
  }
}

TEST(TensorOpsForward, LayerNormAffineApplies) {
  Tensor x = Tensor::from_data({1, 2}, {0, 2});
  Tensor gamma = Tensor::from_data({2}, {2, 2});
  Tensor beta = Tensor::from_data({2}, {1, 1});
  Tensor y = layer_norm(x, gamma, beta);
  EXPECT_NEAR(y.data()[0], 1.0f - 2.0f, 1e-3f);
  EXPECT_NEAR(y.data()[1], 1.0f + 2.0f, 1e-3f);
}

TEST(TensorOpsForward, EmbeddingLooksUpRows) {
  Tensor w = Tensor::from_data({3, 2}, {0, 1, 10, 11, 20, 21});
  Tensor e = embedding(w, {2, 0, 2});
  expect_tensor_eq(e, {20, 21, 0, 1, 20, 21});
  EXPECT_THROW(embedding(w, {3}), ShapeError);
  EXPECT_THROW(embedding(w, {-1}), ShapeError);
}

TEST(TensorOpsForward, CrossEntropyMatchesManual) {
  // Uniform logits: loss = log(C).
  Tensor logits = Tensor::zeros({2, 4});
  Tensor loss = cross_entropy(logits, {0, 3});
  EXPECT_NEAR(loss.item(), std::log(4.0f), 1e-5f);
}

TEST(TensorOpsForward, CrossEntropyIgnoreIndex) {
  Tensor logits = Tensor::from_data({2, 2}, {100, 0, 0, 100});
  // Second row ignored: loss comes from first row only (near zero).
  Tensor loss = cross_entropy(logits, {0, -100});
  EXPECT_NEAR(loss.item(), 0.0f, 1e-4f);
  EXPECT_THROW(cross_entropy(logits, {-100, -100}), Error);
  EXPECT_THROW(cross_entropy(logits, {0, 5}), ShapeError);
  EXPECT_THROW(cross_entropy(logits, {0}), ShapeError);
}

TEST(TensorOpsForward, DropoutZeroPIsIdentity) {
  core::Rng rng(1);
  Tensor a = Tensor::from_data({4}, {1, 2, 3, 4});
  expect_tensor_eq(dropout(a, 0.0f, rng), {1, 2, 3, 4});
}

TEST(TensorOpsForward, DropoutScalesSurvivors) {
  core::Rng rng(7);
  Tensor a = Tensor::full({1000}, 1.0f);
  Tensor d = dropout(a, 0.5f, rng);
  std::int64_t kept = 0;
  for (std::int64_t i = 0; i < 1000; ++i) {
    const float v = d.data()[i];
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6f);
    if (v != 0.0f) ++kept;
  }
  EXPECT_GT(kept, 400);
  EXPECT_LT(kept, 600);
  EXPECT_THROW(dropout(a, 1.0f, rng), Error);
}

TEST(TensorAutogradPlumbing, NoGradGuardSuppressesGraph) {
  Tensor a = Tensor::from_data({2}, {1, 2}, true);
  {
    NoGradGuard guard;
    EXPECT_FALSE(grad_enabled());
    Tensor y = mul_scalar(a, 2.0f);
    EXPECT_TRUE(y.impl()->parents.empty());
  }
  EXPECT_TRUE(grad_enabled());
  Tensor y = mul_scalar(a, 2.0f);
  EXPECT_EQ(y.impl()->parents.size(), 1u);
}

TEST(TensorAutogradPlumbing, BackwardRequiresScalar) {
  Tensor a = Tensor::from_data({2}, {1, 2}, true);
  Tensor y = mul_scalar(a, 2.0f);
  EXPECT_THROW(y.backward(), ShapeError);
}

TEST(TensorAutogradPlumbing, DetachCopyDropsHistory) {
  Tensor a = Tensor::from_data({2}, {1, 2}, true);
  Tensor y = detach_copy(mul_scalar(a, 2.0f));
  EXPECT_FALSE(y.requires_grad());
  EXPECT_TRUE(y.impl()->parents.empty());
  expect_tensor_eq(y, {2, 4});
}

TEST(TensorAutogradPlumbing, GradAccessBeforeBackwardThrows) {
  Tensor a = Tensor::from_data({2}, {1, 2}, true);
  EXPECT_THROW(a.grad(), Error);
  Tensor loss = sum_all(mul_scalar(a, 3.0f));
  loss.backward();
  expect_tensor_eq(Tensor::from_data({2}, a.grad()), {3, 3});
}

TEST(TensorAutogradPlumbing, ZeroGradClears) {
  Tensor a = Tensor::from_data({2}, {1, 2}, true);
  Tensor loss = sum_all(a);
  loss.backward();
  a.zero_grad();
  EXPECT_EQ(a.grad()[0], 0.0f);
  EXPECT_EQ(a.grad()[1], 0.0f);
}

TEST(TensorAutogradPlumbing, GradsAccumulateAcrossUses) {
  // y = a + a -> dy/da = 2 per element.
  Tensor a = Tensor::from_data({2}, {1, 2}, true);
  Tensor loss = sum_all(add(a, a));
  loss.backward();
  expect_tensor_eq(Tensor::from_data({2}, a.grad()), {2, 2});
}

}  // namespace
}  // namespace cppflare::tensor
