#include "train/reporting.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace cppflare::train {
namespace {

class ReportingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cppflare_report_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  static std::vector<std::string> read_lines(const std::string& file) {
    std::ifstream in(file);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }
  std::filesystem::path dir_;
};

TEST_F(ReportingTest, RoundMetricsCsv) {
  flare::RoundMetrics m;
  m.round = 2;
  m.num_contributions = 8;
  m.total_samples = 400;
  m.train_loss = 0.5;
  m.valid_acc = 0.75;
  m.valid_loss = 0.6;
  write_round_metrics_csv(path("rounds.csv"), {m});
  const auto lines = read_lines(path("rounds.csv"));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            "round,num_contributions,total_samples,train_loss,valid_acc,valid_loss");
  EXPECT_EQ(lines[1], "2,8,400,0.5,0.75,0.6");
}

TEST_F(ReportingTest, EpochStatsCsv) {
  EpochStats e;
  e.epoch = 0;
  e.train_loss = 1.25;
  e.valid_loss = 1.5;
  e.valid_acc = 0.5;
  e.seconds = 2.0;
  write_epoch_stats_csv(path("epochs.csv"), {e, e});
  const auto lines = read_lines(path("epochs.csv"));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "0,1.25,1.5,0.5,2");
}

TEST_F(ReportingTest, SeriesCsvRaggedSeries) {
  write_series_csv(path("series.csv"), {"a", "b"}, {{1.0, 2.0, 3.0}, {10.0}});
  const auto lines = read_lines(path("series.csv"));
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "index,a,b");
  EXPECT_EQ(lines[1], "0,1,10");
  EXPECT_EQ(lines[2], "1,2,");
  EXPECT_EQ(lines[3], "2,3,");
}

TEST_F(ReportingTest, SeriesValidatesShape) {
  EXPECT_THROW(write_series_csv(path("x.csv"), {"a"}, {{1.0}, {2.0}}), Error);
}

TEST_F(ReportingTest, UnwritablePathThrows) {
  EXPECT_THROW(write_round_metrics_csv("/nonexistent_zzz/x.csv", {}), Error);
}

TEST_F(ReportingTest, EmptyHistoriesWriteHeadersOnly) {
  write_round_metrics_csv(path("empty.csv"), {});
  EXPECT_EQ(read_lines(path("empty.csv")).size(), 1u);
  write_epoch_stats_csv(path("empty2.csv"), {});
  EXPECT_EQ(read_lines(path("empty2.csv")).size(), 1u);
  write_series_csv(path("empty3.csv"), {}, {});
  EXPECT_EQ(read_lines(path("empty3.csv")).size(), 1u);
}

}  // namespace
}  // namespace cppflare::train
