#!/usr/bin/env bash
# Repo lint entry point — a thin wrapper over the cflint analyzer
# (tools/cflint), which replaced the grep pipeline that used to live here.
# cflint lexes each file (comment/string/raw-string aware) and runs the
# scope-aware rules R1-R11; see DESIGN.md §12 for the catalog and rationale.
#
# Usage:
#   scripts/lint.sh                 lint the repository (exit 0 = clean)
#   scripts/lint.sh --self-test     run the analyzer's hermetic self-test
#   scripts/lint.sh -f json         machine-readable findings
#   scripts/lint.sh path/to/file    lint specific files
#
# The binary is cached in build-tools/ and rebuilt whenever any analyzer
# source is newer, so the wrapper works before CMake has configured (plain
# `scripts/lint.sh` on a fresh clone) and stays in sync afterwards.
set -u

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "${SCRIPT_DIR}")"
TOOL_DIR="${REPO_ROOT}/tools/cflint"
BIN_DIR="${REPO_ROOT}/build-tools"
BIN="${BIN_DIR}/cflint"

CXX_BIN="${CXX:-}"
if [ -z "${CXX_BIN}" ]; then
  for candidate in c++ g++ clang++; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      CXX_BIN="${candidate}"
      break
    fi
  done
fi
if [ -z "${CXX_BIN}" ]; then
  echo "lint.sh: no C++ compiler found (set CXX)" >&2
  exit 2
fi

needs_build=0
if [ ! -x "${BIN}" ]; then
  needs_build=1
else
  for src in "${TOOL_DIR}"/*.cpp "${TOOL_DIR}"/*.h; do
    if [ "${src}" -nt "${BIN}" ]; then
      needs_build=1
      break
    fi
  done
fi

if [ "${needs_build}" -eq 1 ]; then
  mkdir -p "${BIN_DIR}"
  if ! "${CXX_BIN}" -std=c++20 -O2 -Wall -Wextra \
      -o "${BIN}" "${TOOL_DIR}"/*.cpp; then
    echo "lint.sh: failed to build cflint with ${CXX_BIN}" >&2
    exit 2
  fi
fi

exec "${BIN}" --root "${REPO_ROOT}" "$@"
