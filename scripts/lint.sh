#!/usr/bin/env bash
# Repo lint: greppable correctness rules over the FL runtime.
#
# Rules (each one guards a reproducibility or runtime invariant):
#   R1  no rand()/srand() outside src/core/rng.*       — all randomness flows
#       through seeded core::Rng so runs are reproducible.
#   R2  no naked new/delete in src/flare/              — the runtime passes
#       ownership across threads; raw owning pointers are how socket- and
#       task-lifetime races start. Use unique_ptr/shared_ptr/containers.
#   R3  no #include <iostream> in library code         — only the logging
#       sink (src/core/logging.*) talks to std streams; everything else logs
#       through core::Logger so output stays serialized and redirectable.
#   R4  header hygiene                                 — every header under
#       src/ uses `#pragma once` (no #ifndef guards, no guardless headers).
#   R5  no raw std::thread outside src/core/           — all parallelism goes
#       through core::parallel_for / core::ThreadPool so the process-wide
#       compute budget stays enforceable. Blocking I/O threads (the TCP
#       transport) are annotated `R5-exempt: <reason>` on the offending line.
#       `std::thread::hardware_concurrency()` (member access, no spawn) is
#       allowed.
#   R6  no naked sleep_for/sleep_until/usleep outside src/core/backoff.* —
#       blocking waits in the runtime are retry/poll loops in disguise; they
#       go through core::Backoff so every delay is bounded, seeded-jittered,
#       and visible in one place. Genuinely non-retry sleeps (e.g. a test
#       harness pacing itself) are annotated `R6-exempt: <reason>`.
#   R7  no direct Aggregator::accept calls in src/flare/ outside
#       validator.cpp — every contribution must pass through
#       UpdateValidator::admit so the screening pipeline (schema, finite,
#       freshness, sample count) and the rejection telemetry cannot be
#       bypassed. Raw `::accept(` socket calls are not method calls and do
#       not match. Annotate a sanctioned exception `R7-exempt: <reason>`.
#   R8  no legacy Logger string methods (.info/.warn/.error/.debug) outside
#       src/core/ — library code logs through the structured event API
#       (LOG(level).msg(...).kv(...), core/logging.h) so lines stay
#       machine-parsable; the legacy form survives only as a shim inside
#       core and in tests. Annotate a sanctioned exception
#       `R8-exempt: <reason>`.
#
# Usage:
#   scripts/lint.sh              lint the repository (exit 0 = clean)
#   scripts/lint.sh --self-test  prove each rule still fires on a violation
#
# The rule engine takes the tree root as a parameter so the self-test can run
# the exact same code against a fixture tree with planted violations.
set -u

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "${SCRIPT_DIR}")"

# Strip // and /* */ comment text so rule regexes only see code. Keeps line
# structure (and therefore line numbers) intact.
strip_comments() {
  sed -e 's|//.*||' -e 's|/\*.*\*/||g' "$1"
}

# Each check_* prints "file:line: message" per violation and returns the
# violation count via its output; callers accumulate.

check_rand() {  # R1: rand()/srand() outside src/core/rng.*
  local root="$1"
  local f
  find "$root/src" -type f \( -name '*.cpp' -o -name '*.h' \) 2>/dev/null |
    while IFS= read -r f; do
      case "$f" in */src/core/rng.cpp | */src/core/rng.h) continue ;; esac
      strip_comments "$f" | grep -nE '(^|[^A-Za-z0-9_])s?rand[[:space:]]*\(' |
        sed "s|^|${f#"$root"/}:|" | sed 's|$|: R1 rand()/srand() outside src/core/rng.* (use core::Rng)|'
    done
}

check_naked_new_delete() {  # R2: naked new/delete in src/flare/
  local root="$1"
  local f
  find "$root/src/flare" -type f \( -name '*.cpp' -o -name '*.h' \) 2>/dev/null |
    while IFS= read -r f; do
      strip_comments "$f" |
        grep -nE '(^|[^A-Za-z0-9_])(new[[:space:]]+[A-Za-z_:(<]|delete([[:space:]]|\[))' |
        grep -vE '=[[:space:]]*delete' |
        sed "s|^|${f#"$root"/}:|" | sed 's|$|: R2 naked new/delete in src/flare/ (use smart pointers)|'
    done
}

check_iostream() {  # R3: <iostream> in library code outside the log sink
  local root="$1"
  local f
  find "$root/src" -type f \( -name '*.cpp' -o -name '*.h' \) 2>/dev/null |
    while IFS= read -r f; do
      case "$f" in */src/core/logging.cpp | */src/core/logging.h) continue ;; esac
      grep -nE '^[[:space:]]*#[[:space:]]*include[[:space:]]*<iostream>' "$f" |
        sed "s|^|${f#"$root"/}:|" | sed 's|$|: R3 #include <iostream> in library code (log via core::Logger)|'
    done
}

check_header_guards() {  # R4: #pragma once everywhere, no #ifndef guards
  local root="$1"
  local f
  find "$root/src" -type f -name '*.h' 2>/dev/null |
    while IFS= read -r f; do
      if ! grep -q '^#pragma once' "$f"; then
        echo "${f#"$root"/}:1: R4 header missing #pragma once"
      elif grep -qE '^#ifndef[[:space:]]+[A-Z0-9_]+_H' "$f"; then
        echo "${f#"$root"/}:1: R4 mixed include-guard styles (#ifndef next to #pragma once)"
      fi
    done
}

check_raw_threads() {  # R5: raw std::thread outside src/core/
  local root="$1"
  local f
  find "$root/src" -type f \( -name '*.cpp' -o -name '*.h' \) 2>/dev/null |
    while IFS= read -r f; do
      case "$f" in */src/core/*) continue ;; esac
      # `[^:]` after the token lets std::thread::hardware_concurrency through
      # while still catching declarations, constructions and vector<...>.
      strip_comments "$f" |
        grep -nE '(^|[^A-Za-z0-9_])std::thread([^:A-Za-z0-9_]|$)' |
        while IFS= read -r hit; do
          # Exemption markers live in comments, which strip_comments removed —
          # re-check the raw source line.
          local ln="${hit%%:*}"
          if sed -n "${ln}p" "$f" | grep -q 'R5-exempt:'; then continue; fi
          echo "${f#"$root"/}:${hit}" |
            sed 's|$|: R5 raw std::thread outside src/core/ (use core::parallel_for or core::ThreadPool)|'
        done
    done
}

check_naked_sleeps() {  # R6: blocking sleeps outside src/core/backoff.*
  local root="$1"
  local f
  find "$root/src" -type f \( -name '*.cpp' -o -name '*.h' \) 2>/dev/null |
    while IFS= read -r f; do
      case "$f" in */src/core/backoff.cpp | */src/core/backoff.h) continue ;; esac
      strip_comments "$f" |
        grep -nE '(^|[^A-Za-z0-9_])(sleep_for|sleep_until|usleep)[[:space:]]*\(' |
        while IFS= read -r hit; do
          local ln="${hit%%:*}"
          if sed -n "${ln}p" "$f" | grep -q 'R6-exempt:'; then continue; fi
          echo "${f#"$root"/}:${hit}" |
            sed 's|$|: R6 naked blocking sleep outside src/core/backoff.* (use core::Backoff)|'
        done
    done
}

check_direct_accept() {  # R7: Aggregator::accept called outside the validator
  local root="$1"
  local f
  find "$root/src/flare" -type f \( -name '*.cpp' -o -name '*.h' \) 2>/dev/null |
    while IFS= read -r f; do
      case "$f" in */src/flare/validator.cpp) continue ;; esac
      # `(->|\.)accept\(` catches method calls on an aggregator object but
      # not raw `::accept(` socket calls or `Foo::accept(` definitions.
      strip_comments "$f" |
        grep -nE '(->|\.)[[:space:]]*accept[[:space:]]*\(' |
        while IFS= read -r hit; do
          local ln="${hit%%:*}"
          if sed -n "${ln}p" "$f" | grep -q 'R7-exempt:'; then continue; fi
          echo "${f#"$root"/}:${hit}" |
            sed 's|$|: R7 direct Aggregator::accept outside validator.cpp (route through UpdateValidator::admit)|'
        done
    done
}

check_legacy_log() {  # R8: legacy Logger string methods outside src/core/
  local root="$1"
  local f
  find "$root/src" -type f \( -name '*.cpp' -o -name '*.h' \) 2>/dev/null |
    while IFS= read -r f; do
      case "$f" in */src/core/*) continue ;; esac
      # Method-call syntax only: `LOG(info)` / `LOG_AS(...)` macro calls and
      # the builder's .msg()/.kv() chain do not match.
      strip_comments "$f" |
        grep -nE '(->|\.)[[:space:]]*(debug|info|warn|error)[[:space:]]*\(' |
        while IFS= read -r hit; do
          local ln="${hit%%:*}"
          if sed -n "${ln}p" "$f" | grep -q 'R8-exempt:'; then continue; fi
          echo "${f#"$root"/}:${hit}" |
            sed 's|$|: R8 legacy Logger call outside src/core/ (use LOG(level).msg(...).kv(...))|'
        done
    done
}

run_all_checks() {
  local root="$1"
  check_rand "$root"
  check_naked_new_delete "$root"
  check_iostream "$root"
  check_header_guards "$root"
  check_raw_threads "$root"
  check_naked_sleeps "$root"
  check_direct_accept "$root"
  check_legacy_log "$root"
}

self_test() {
  local tmp
  tmp="$(mktemp -d)"
  # shellcheck disable=SC2064  — expand now: $tmp is a local, gone at EXIT.
  trap "rm -rf '$tmp'" EXIT
  mkdir -p "$tmp/src/core" "$tmp/src/flare"

  # One planted violation per rule, plus decoys that must NOT fire.
  cat > "$tmp/src/core/seed.cpp" <<'EOF'
#include <cstdlib>
void reseed() { srand(42); }
int noisy() { return rand(); }
int fine_decoy() { int operand = 1; return operand; }  // "rand" substring
EOF
  cat > "$tmp/src/flare/owner.cpp" <<'EOF'
struct Widget { int x; };
Widget* leaky() { return new Widget{1}; }
void racy(Widget* w) { delete w; }
struct NoCopy { NoCopy(const NoCopy&) = delete; };  // decoy: deleted fn
// decoy comment: a new Widget is born, delete it later
EOF
  cat > "$tmp/src/flare/chatty.cpp" <<'EOF'
#include <iostream>
void shout() { std::cout << "hi\n"; }
EOF
  cat > "$tmp/src/flare/guardless.h" <<'EOF'
struct Unguarded { int x; };
EOF
  cat > "$tmp/src/flare/clean.h" <<'EOF'
#pragma once
struct Clean { int x; };
EOF
  cat > "$tmp/src/flare/spawner.cpp" <<'EOF'
#include <thread>
void spawn() { std::thread t([] {}); t.join(); }
void io() { std::thread t2([] {}); t2.join(); }  // R5-exempt: blocking I/O fixture
void waiter() { std::this_thread::yield(); }
unsigned hw() { return std::thread::hardware_concurrency(); }
// decoy comment: std::thread mentioned in prose only
EOF
  cat > "$tmp/src/core/pool_impl.cpp" <<'EOF'
#include <thread>
void core_owns_threads() { std::thread t([] {}); t.join(); }
EOF
  cat > "$tmp/src/flare/napper.cpp" <<'EOF'
#include <chrono>
#include <thread>
void retry_loop() { std::this_thread::sleep_for(std::chrono::milliseconds(5)); }
void paced() { std::this_thread::sleep_for(std::chrono::seconds(1)); }  // R6-exempt: harness pacing fixture
int sleepy_decoy() { int sleep_forever = 1; return sleep_forever; }
// decoy comment: sleep_for mentioned in prose only
EOF
  cat > "$tmp/src/core/backoff.cpp" <<'EOF'
#include <chrono>
#include <thread>
void blessed() { std::this_thread::sleep_for(std::chrono::milliseconds(1)); }
EOF
  cat > "$tmp/src/flare/rogue_server.cpp" <<'EOF'
struct Agg { bool accept(int, int); };
bool smuggle(Agg* agg) { return agg->accept(1, 2); }
bool sanctioned(Agg& agg) { return agg.accept(3, 4); }  // R7-exempt: test fixture
int raw_socket_decoy(int fd) { return ::accept(fd, 0, 0); }
// decoy comment: we accept( contributions here in prose only
EOF
  cat > "$tmp/src/flare/validator.cpp" <<'EOF'
struct Agg { bool accept(int, int); };
bool admit(Agg& agg) { return agg.accept(5, 6); }
EOF
  cat > "$tmp/src/flare/old_logger.cpp" <<'EOF'
struct L { void info(const char*) const; void warn(const char*) const; };
void legacy(const L& log) { log.info("round started"); }
void sanctioned(const L& log) { log.warn("fig3 line"); }  // R8-exempt: test fixture
struct Ev { Ev& msg(const char*); Ev& kv(const char*, int); };
Ev structured_decoy(Ev e) { return e.msg("ok").kv("round", 1); }
int information_decoy() { return 0; }
// decoy comment: log.error( mentioned in prose only
EOF
  cat > "$tmp/src/core/log_shim.cpp" <<'EOF'
struct L { void info(const char*) const; };
void core_may_shim(const L& log) { log.info("legacy shim allowed in core"); }
EOF

  local out
  out="$(run_all_checks "$tmp")"
  local failed=0
  for rule in R1 R2 R3 R4 R5 R6 R7 R8; do
    if ! grep -q "$rule" <<<"$out"; then
      echo "lint self-test: rule $rule did not fire on its fixture" >&2
      failed=1
    fi
  done
  # The decoys must not produce extra hits: expect exactly 2xR1 (rand+srand),
  # 2xR2 (new+delete), 1xR3, 1xR4, 1xR5 (the exempt line, this_thread,
  # hardware_concurrency, comment and src/core/ fixtures all stay quiet),
  # 1xR6 (the exempt line, identifier decoy, comment and backoff.cpp
  # fixtures all stay quiet), 1xR7 (the exempt line, raw ::accept socket
  # call, prose comment and validator.cpp fixtures all stay quiet), 1xR8
  # (the exempt line, the structured-builder decoy, the identifier decoy,
  # the prose comment and the src/core/ shim fixture all stay quiet).
  local count
  count="$(grep -c ':' <<<"$out")"
  if [ "$count" -ne 10 ]; then
    echo "lint self-test: expected 10 violations, got $count:" >&2
    echo "$out" >&2
    failed=1
  fi
  if [ "$failed" -ne 0 ]; then
    echo "lint self-test FAILED" >&2
    exit 1
  fi
  echo "lint self-test passed (all rules fire, decoys stay quiet)"
}

main() {
  if [ "${1:-}" = "--self-test" ]; then
    self_test
    exit 0
  fi
  local out
  out="$(run_all_checks "$REPO_ROOT")"
  if [ -n "$out" ]; then
    echo "$out" >&2
    echo "lint: $(grep -c ':' <<<"$out") violation(s)" >&2
    exit 1
  fi
  echo "lint: clean"
}

main "$@"
