#!/usr/bin/env bash
# One-command reproducible CI pass: lint, the full suite under ASan+UBSan,
# and the concurrency-sensitive tests under TSan (with the suppressions file,
# which is empty by policy — see scripts/tsan.supp). A subset of
# scripts/check_all.sh sized for every-push latency.
#
# Usage: scripts/ci.sh [-j N]
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "${SCRIPT_DIR}")"
cd "${REPO_ROOT}"

JOBS="$(nproc 2>/dev/null || echo 2)"
if [ "${1:-}" = "-j" ] && [ -n "${2:-}" ]; then JOBS="$2"; fi

step() { echo; echo "==== $* ===="; }

step "lint"
"${SCRIPT_DIR}/lint.sh" --self-test
"${SCRIPT_DIR}/lint.sh"

step "asan-ubsan: build + full ctest"
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "${JOBS}"
ctest --preset asan-ubsan -j "${JOBS}"

step "tsan: build + threaded/stress ctest"
cmake --preset tsan
cmake --build --preset tsan -j "${JOBS}"
# The threaded surface: the stress suite plus every test that spins up the
# pool, the TCP transport, or a federation. TSAN_OPTIONS from the test
# preset already points at scripts/tsan.supp; export too for direct runs.
export TSAN_OPTIONS="suppressions=${REPO_ROOT}/scripts/tsan.supp:history_size=7"
ctest --preset tsan -j "${JOBS}" -R \
  '^(stress_concurrency_test|parallel_test|thread_pool_test|tcp_test|simulator_test|server_client_test|integration_fl_test|cross_site_test|faults_test|poison_test|trace_test)$'

step "ci pass complete"
