#!/usr/bin/env bash
# One-command reproducible CI pass, cheapest-first so broken pushes fail in
# seconds, not minutes:
#
#   1. cflint        static analysis (tools/cflint via scripts/lint.sh):
#                    self-test, then the repo scan
#   2. build matrix  asan-ubsan build (the heavier preset compile)
#   3. tsa           Clang -Wthread-safety over the CF_GUARDED_BY/CF_REQUIRES
#                    annotations (compile-only; skipped loudly without clang++)
#   4. tidy          clang-tidy over src/ (skipped loudly when not installed)
#   5. tests         full suite under ASan+UBSan, then the threaded subset
#                    under TSan
#
# A subset of scripts/check_all.sh sized for every-push latency.
#
# Usage: scripts/ci.sh [-j N]
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "${SCRIPT_DIR}")"
cd "${REPO_ROOT}"

JOBS="$(nproc 2>/dev/null || echo 2)"
if [ "${1:-}" = "-j" ] && [ -n "${2:-}" ]; then JOBS="$2"; fi

step() { echo; echo "==== $* ===="; }

step "cflint"
"${SCRIPT_DIR}/lint.sh" --self-test
"${SCRIPT_DIR}/lint.sh"

step "asan-ubsan: build"
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "${JOBS}"

step "clang thread-safety analysis"
if command -v clang++ >/dev/null 2>&1; then
  cmake --preset clang-tsa
  cmake --build --preset clang-tsa -j "${JOBS}"
else
  echo "!! clang++ not installed: SKIPPING thread-safety analysis."
  echo "!! The CF_GUARDED_BY/CF_REQUIRES annotations compile to no-ops under"
  echo "!! GCC, so this machine has NOT verified the locking contracts."
  echo "!! Install clang and rerun, or rely on the TSan stage below for"
  echo "!! dynamic coverage of the same invariants."
fi

step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --preset release -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build-release -quiet "src/.*\.cpp$"
  else
    find src -name '*.cpp' -print0 |
      xargs -0 -n 8 clang-tidy -p build-release --quiet
  fi
else
  echo "!! clang-tidy not installed: SKIPPING tidy checks (cflint above"
  echo "!! still enforced; concurrency-* tidy checks were not run)."
fi

step "asan-ubsan: full ctest"
ctest --preset asan-ubsan -j "${JOBS}"

step "tsan: build + threaded/stress ctest"
cmake --preset tsan
cmake --build --preset tsan -j "${JOBS}"
# The threaded surface: the stress suite plus every test that spins up the
# pool, the TCP transport, or a federation. TSAN_OPTIONS from the test
# preset already points at scripts/tsan.supp; export too for direct runs.
export TSAN_OPTIONS="suppressions=${REPO_ROOT}/scripts/tsan.supp:history_size=7"
ctest --preset tsan -j "${JOBS}" -R \
  '^(stress_concurrency_test|parallel_test|thread_pool_test|tcp_test|simulator_test|server_client_test|integration_fl_test|cross_site_test|faults_test|secure_recovery_test|poison_test|trace_test|scale_test|journal_test|crash_recovery_test|jobs_test)$'

step "ci pass complete"
