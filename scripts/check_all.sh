#!/usr/bin/env bash
# Full correctness gate: cflint -> clang thread-safety analysis -> clang-tidy
# -> build all three sanitizer presets with -Werror -> ctest each. This is
# the "am I allowed to merge" command; scripts/ci.sh is the cheaper subset
# meant for every push. The two clang stages skip loudly when the clang
# toolchain is absent (the annotations are no-ops under GCC).
#
# Usage: scripts/check_all.sh [-j N]
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "${SCRIPT_DIR}")"
cd "${REPO_ROOT}"

JOBS="$(nproc 2>/dev/null || echo 2)"
if [ "${1:-}" = "-j" ] && [ -n "${2:-}" ]; then JOBS="$2"; fi

step() { echo; echo "==== $* ===="; }

step "cflint"
"${SCRIPT_DIR}/lint.sh" --self-test
"${SCRIPT_DIR}/lint.sh"

step "clang thread-safety analysis"
if command -v clang++ >/dev/null 2>&1; then
  cmake --preset clang-tsa
  cmake --build --preset clang-tsa -j "${JOBS}"
else
  echo "!! clang++ not installed: SKIPPING thread-safety analysis."
  echo "!! Locking contracts (CF_GUARDED_BY/CF_REQUIRES) were NOT verified"
  echo "!! at compile time on this machine; the TSan preset below covers"
  echo "!! them dynamically."
fi

step "clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json comes from the release preset configure below if
  # missing; configure it first so tidy always has a database.
  cmake --preset release -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build-release -quiet "src/.*\.cpp$"
  else
    find src -name '*.cpp' -print0 |
      xargs -0 -n 8 clang-tidy -p build-release --quiet
  fi
else
  echo "!! clang-tidy not installed: SKIPPING tidy checks (cflint above"
  echo "!! still enforced; concurrency-* tidy checks were not run)."
fi

for preset in release asan-ubsan tsan; do
  step "build ${preset} (WERROR=ON)"
  cmake --preset "${preset}" -DCPPFLARE_WERROR=ON
  cmake --build --preset "${preset}" -j "${JOBS}"
  step "ctest ${preset}"
  ctest --preset "${preset}" -j "${JOBS}"
done

step "all checks passed"
