#!/usr/bin/env bash
# Benchmark harness: builds the release preset and records the compute
# backend's numbers to JSON so a PR can show its perf claim instead of
# asserting it.
#
#   BENCH_tensor.json — google-benchmark output of bench_micro_tensor. The
#       GEMM benches carry the thread budget as their second argument
#       (e.g. BM_GemmNN/512/4 = N=512 at 4 compute threads), so one run
#       captures the 1..4-thread scaling curve: items_per_second is the
#       ops/s figure, real_time the wall time per iteration.
#   BENCH_models.json — bench_table2_models latencies per model plus the
#       effective thread budget and total wall seconds.
#   BENCH_faults.json — bench_faults rounds/s of an 8-site TCP federation
#       with and without the standard fault plan (10% drop, 10% delay, one
#       disconnect), plus the resulting overhead factor.
#   BENCH_obs.json — bench_trace rounds/s of a clean vs fully traced 8-site
#     TCP federation and the tracing overhead factor (budget 1.05x).
#   BENCH_scale.json — bench_scale rounds/s, peak fd count and peak thread
#       count at 8/64 sites over TCP (epoll reactor) and 64/256 sites in the
#       multiplexed in-process mode (8 pool workers), plus a re-measurement
#       of the faulty-run overhead factor against the 4.16x pre-reactor
#       baseline recorded in BENCH_faults.json.
#   BENCH_privacy.json — bench_privacy rounds/s of masked vs unmasked
#       8-site TCP federations (clean and with one site dropped mid-run, so
#       masked rounds pay the unmask-recovery wave), plus a DP noise grid:
#       final-model RMSE against the clip-only reference and the
#       accountant's epsilon per sigma (-1 encodes infinite spend).
#   BENCH_crash.json — bench_crash rounds/s of an 8-site threaded federation
#       with the round journal off, fsyncing once per round (budget 1.10x
#       against journal-off) and fsyncing every record, plus the replay
#       latency of a coordinator restarted over a mid-round journal holding
#       eight accepted contributions.
#   BENCH_jobs.json — bench_jobs aggregate rounds/s of 1 vs 4 concurrent
#       federated jobs on one coordinator (8 sites each, in-proc transport)
#       with the resulting scaling factor, plus mean admin-console call
#       latency (status/metrics/list) through the sealed line protocol.
#   BENCH_robust.json — bench_poison accuracy + rounds/s for four
#       aggregation configs (FedAvg, FedAvg+validator+quarantine, median,
#       trimmed mean) under every poisoning mode with 1-2 adversaries, plus
#       the validator's measured overhead on a clean round.
#
# Usage: scripts/bench.sh [-j N]
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
REPO_ROOT="$(dirname "${SCRIPT_DIR}")"
cd "${REPO_ROOT}"

JOBS="$(nproc 2>/dev/null || echo 2)"
if [ "${1:-}" = "-j" ] && [ -n "${2:-}" ]; then JOBS="$2"; fi

step() { echo; echo "==== $* ===="; }

step "release: build benches"
cmake --preset release
cmake --build --preset release -j "${JOBS}" \
  --target bench_micro_tensor bench_table2_models bench_faults bench_crash bench_jobs bench_privacy bench_poison bench_trace bench_scale

step "tensor microbenchmarks -> BENCH_tensor.json"
./build-release/bench/bench_micro_tensor \
  --benchmark_out="${REPO_ROOT}/BENCH_tensor.json" \
  --benchmark_out_format=json \
  --benchmark_min_time=0.2

step "model latencies -> BENCH_models.json"
./build-release/bench/bench_table2_models --json "${REPO_ROOT}/BENCH_models.json"

step "fault-tolerance overhead -> BENCH_faults.json"
./build-release/bench/bench_faults --json "${REPO_ROOT}/BENCH_faults.json"

step "durability overhead + crash recovery -> BENCH_crash.json"
./build-release/bench/bench_crash --json "${REPO_ROOT}/BENCH_crash.json"

step "multi-job coordinator -> BENCH_jobs.json"
./build-release/bench/bench_jobs --json "${REPO_ROOT}/BENCH_jobs.json"

step "privacy runtime -> BENCH_privacy.json"
./build-release/bench/bench_privacy --json "${REPO_ROOT}/BENCH_privacy.json"

step "adversarial robustness -> BENCH_robust.json"
./build-release/bench/bench_poison --json "${REPO_ROOT}/BENCH_robust.json"

step "observability overhead -> BENCH_obs.json"
./build-release/bench/bench_trace --json "${REPO_ROOT}/BENCH_obs.json"

step "coordinator scaling -> BENCH_scale.json"
./build-release/bench/bench_scale --json "${REPO_ROOT}/BENCH_scale.json"

step "bench complete"
echo "wrote BENCH_tensor.json, BENCH_models.json, BENCH_faults.json, BENCH_crash.json, BENCH_jobs.json, BENCH_privacy.json, BENCH_robust.json, BENCH_obs.json and BENCH_scale.json"
