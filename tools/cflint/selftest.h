// Hermetic self-test for the cflint rule engine: runs every rule over
// embedded in-memory fixture files (one violating and one exempt-annotated
// clean counterpart per rule) and checks the exact findings. No filesystem
// access, so `cflint --self-test` proves the engine anywhere the binary
// runs — including inside ctest before the repo scan.
#pragma once

namespace cflint {

/// Returns true when every rule fired where expected and nowhere else.
/// Prints one PASS/FAIL line per case to stdout and a summary to stderr.
bool run_selftest();

}  // namespace cflint
