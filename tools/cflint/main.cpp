// cflint — the repo's C++ lint analyzer. Replaces the grep pipeline that
// used to live in scripts/lint.sh (that script is now a thin wrapper which
// builds and executes this binary).
//
// Usage:
//   cflint [--root DIR] [-f gcc|json] [file...]
//   cflint --self-test
//
// With no file arguments, scans every .h/.cpp under <root>/src. Explicit
// file arguments are linted as-is (paths are made root-relative first so
// path-scoped rules behave identically). Exit codes: 0 clean, 1 findings,
// 2 usage/IO error.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.h"
#include "rules.h"
#include "selftest.h"

namespace {

namespace fs = std::filesystem;

struct Options {
  std::string root = ".";
  std::string format = "gcc";
  bool self_test = false;
  std::vector<std::string> files;
};

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: cflint [--root DIR] [-f gcc|json] [file...]\n"
               "       cflint --self-test\n"
               "Lints every .h/.cpp under <root>/src when no files are "
               "given.\nExit: 0 clean, 1 findings, 2 usage/IO error.\n");
}

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      opt.self_test = true;
    } else if (arg == "--root") {
      if (++i >= argc) return false;
      opt.root = argv[i];
    } else if (arg == "-f" || arg == "--format") {
      if (++i >= argc) return false;
      opt.format = argv[i];
      if (opt.format != "gcc" && opt.format != "json") return false;
    } else if (arg == "-h" || arg == "--help") {
      usage(stdout);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else {
      opt.files.push_back(arg);
    }
  }
  return true;
}

/// Path relative to root with forward slashes — the form every path-scoped
/// rule keys on ("src/flare/...").
std::string rel_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec || rel.empty()) ? p.generic_string() : rel.generic_string();
  while (s.compare(0, 2, "./") == 0) s.erase(0, 2);
  return s;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp";
}

std::vector<fs::path> discover(const fs::path& root) {
  std::vector<fs::path> out;
  const fs::path src = root / "src";
  if (!fs::exists(src)) return out;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (entry.is_regular_file() && lintable(entry.path())) {
      out.push_back(entry.path());
    }
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) {
    usage(stderr);
    return 2;
  }
  if (opt.self_test) {
    return cflint::run_selftest() ? 0 : 1;
  }

  const fs::path root(opt.root);
  std::vector<fs::path> paths;
  if (opt.files.empty()) {
    paths = discover(root);
    if (paths.empty()) {
      std::fprintf(stderr, "cflint: no lintable files under %s/src\n",
                   opt.root.c_str());
      return 2;
    }
  } else {
    for (const std::string& f : opt.files) paths.emplace_back(f);
  }

  std::vector<cflint::FileUnit> units;
  units.reserve(paths.size());
  for (const fs::path& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cflint: cannot read %s\n", p.string().c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    units.push_back({rel_path(p, root), cflint::lex(buf.str())});
  }

  const std::vector<cflint::Finding> findings = cflint::run_rules(units);

  if (opt.format == "json") {
    std::printf("[");
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const cflint::Finding& f = findings[i];
      std::printf(
          "%s\n  {\"rule\": \"R%d\", \"file\": \"%s\", \"line\": %d, "
          "\"col\": %d, \"message\": \"%s\"}",
          i == 0 ? "" : ",", f.rule, json_escape(f.file).c_str(), f.line,
          f.col, json_escape(f.message).c_str());
    }
    std::printf("%s]\n", findings.empty() ? "" : "\n");
  } else {
    for (const cflint::Finding& f : findings) {
      std::printf("%s:%d:%d: error: [R%d] %s\n", f.file.c_str(), f.line,
                  f.col, f.rule, f.message.c_str());
    }
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "cflint: %zu violation(s) in %zu file(s)\n",
                 findings.size(), units.size());
    return 1;
  }
  std::fprintf(stderr, "cflint: clean (%zu files)\n", units.size());
  return 0;
}
