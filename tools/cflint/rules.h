// cflint rule engine: scope-aware reimplementation of the repo lint rules
// R1-R8 plus the concurrency/determinism rules R9-R11 that a grep pipeline
// cannot express. See scripts/lint.sh (thin wrapper) and DESIGN.md §12 for
// the rule catalog and rationale.
#pragma once

#include <string>
#include <vector>

#include "lexer.h"

namespace cflint {

struct Finding {
  int rule = 0;
  std::string file;  // repo-relative, forward slashes
  int line = 0;
  int col = 0;
  std::string message;
};

/// One lexed source file, addressed by its repo-relative path ("src/...").
/// Rules scope themselves by path prefix/substring, so the path must be
/// normalized (forward slashes, no leading "./").
struct FileUnit {
  std::string path;
  LexResult lx;
};

/// Runs every rule over the file set. Two-pass: a cross-file pass first
/// collects the R11 nodiscard-returning function names, then each file is
/// checked independently. Exemptions (`R<n>-exempt:` comments, collected by
/// the lexer) are applied before findings are returned. Findings come back
/// sorted by (file, line, col, rule).
std::vector<Finding> run_rules(const std::vector<FileUnit>& files);

/// Fixed one-line rationale for a rule, for `--explain`-style output and
/// the self-test banner. Returns "" for unknown rule numbers.
const char* rule_summary(int rule);

}  // namespace cflint
