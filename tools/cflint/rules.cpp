#include "rules.h"

#include <algorithm>
#include <array>
#include <cstddef>
#include <set>
#include <string>

namespace cflint {

namespace {

// ---------------------------------------------------------------------------
// Path scoping helpers (paths are repo-relative with forward slashes)
// ---------------------------------------------------------------------------

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool contains(const std::string& s, const std::string& sub) {
  return s.find(sub) != std::string::npos;
}

bool is_header(const std::string& path) { return ends_with(path, ".h"); }

/// R9 applies only where iteration order reaches bytes, checkpoints, wire
/// frames or aggregate arithmetic — the determinism-sensitive set.
bool r9_in_scope(const std::string& path) {
  static const std::array<const char*, 12> kScopes = {
      "src/flare/aggregator", "src/flare/robust_aggregator",
      "src/flare/persistor",  "src/flare/messages",
      "src/flare/dxo",        "src/flare/secure_agg",
      "src/flare/observability", "src/nn/state_dict",
      "src/core/bytes",       "src/data/vocab",
      "src/train/reporting",  "src/flare/journal"};
  for (const char* scope : kScopes) {
    if (contains(path, scope)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Token-stream helpers
// ---------------------------------------------------------------------------

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Index of the token matching the opener at `open` ("(", "{", "[", "<"),
/// or tokens.size() when unbalanced. For "<" a token that cannot appear in
/// a template-argument list (";", "{") aborts the balance — that is how we
/// avoid treating a less-than comparison as an unterminated template list.
std::size_t matching(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  std::string c;
  if (o == "(") c = ")";
  else if (o == "{") c = "}";
  else if (o == "[") c = "]";
  else if (o == "<") c = ">";
  else return toks.size();
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text == o) ++depth;
    else if (toks[i].text == c && --depth == 0) return i;
    else if (o == "<" && (toks[i].text == ";" || toks[i].text == "{")) break;
  }
  return toks.size();
}

class RuleRunner {
 public:
  RuleRunner(const FileUnit& file, const std::set<std::string>& nodiscard_fns,
             std::vector<Finding>& out)
      : path_(file.path),
        toks_(file.lx.tokens),
        exemptions_(file.lx.exemptions),
        nodiscard_fns_(nodiscard_fns),
        out_(out) {}

  void run() {
    r1_no_rand();
    r2_no_naked_new_delete();
    r3_no_iostream();
    r4_header_hygiene();
    r5_no_raw_thread();
    r6_no_naked_sleep();
    r7_validator_bypass();
    r8_legacy_logger();
    r9_unordered_iteration();
    r10_blocking_under_lock();
    r11_nodiscard();
    r12_secure_agg_containment();
    r13_durable_writes_only();
    r14_server_via_job_runner();
  }

 private:
  void flag(int rule, const Token& at, std::string message) {
    auto it = exemptions_.find(rule);
    if (it != exemptions_.end() && it->second.count(at.line)) return;
    out_.push_back({rule, path_, at.line, at.col, std::move(message)});
  }

  const Token* prev(std::size_t i) const {
    return i == 0 ? nullptr : &toks_[i - 1];
  }
  const Token* next(std::size_t i) const {
    return i + 1 < toks_.size() ? &toks_[i + 1] : nullptr;
  }

  // R1: all randomness flows through seeded core::Rng so runs reproduce.
  void r1_no_rand() {
    if (starts_with(path_, "src/core/rng.")) return;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokKind::kIdent || (t.text != "rand" && t.text != "srand")) {
        continue;
      }
      const Token* n = next(i);
      if (n == nullptr || !is_punct(*n, "(")) continue;
      const Token* p = prev(i);
      if (p != nullptr && (is_punct(*p, ".") || is_punct(*p, "->"))) continue;
      if (p != nullptr && is_punct(*p, "::")) {
        // Qualified call: only std::rand / ::rand are the libc one.
        const Token* q = i >= 2 ? &toks_[i - 2] : nullptr;
        if (q != nullptr && q->kind == TokKind::kIdent && q->text != "std") {
          continue;
        }
      }
      flag(1, t, t.text + "() is banned; all randomness goes through seeded "
                 "core::Rng so runs are reproducible");
    }
  }

  // R2: the flare runtime passes ownership across threads; raw owning
  // pointers are how socket- and task-lifetime races start.
  void r2_no_naked_new_delete() {
    if (!starts_with(path_, "src/flare/")) return;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokKind::kIdent) continue;
      if (t.text != "new" && t.text != "delete") continue;
      const Token* p = prev(i);
      if (t.text == "delete" && p != nullptr && is_punct(*p, "=")) {
        continue;  // deleted special member, not a deallocation
      }
      flag(2, t, "naked '" + t.text +
                 "' in src/flare/; use unique_ptr/shared_ptr/containers");
    }
  }

  // R3: only the logging sink talks to std streams.
  void r3_no_iostream() {
    if (starts_with(path_, "src/core/logging.")) return;
    for (const Token& t : toks_) {
      if (t.kind != TokKind::kPreproc) continue;
      if (contains(t.text, "include") && contains(t.text, "<iostream>")) {
        flag(3, t, "#include <iostream> outside src/core/logging.*; log "
                   "through core::Logger / LOG(level)");
      }
    }
  }

  // R4: every src/ header uses #pragma once; legacy #ifndef guards flagged.
  void r4_header_hygiene() {
    if (!is_header(path_)) return;
    bool has_pragma_once = false;
    for (const Token& t : toks_) {
      if (t.kind != TokKind::kPreproc) continue;
      if (contains(t.text, "pragma") && contains(t.text, "once")) {
        has_pragma_once = true;
      }
      if (contains(t.text, "ifndef")) {
        const std::string& s = t.text;
        if (ends_with_guard_macro(s)) {
          flag(4, t, "legacy include guard; this repo uses #pragma once");
        }
      }
    }
    if (!has_pragma_once) {
      Token at{TokKind::kPreproc, "", 1, 1};
      flag(4, at, "header missing #pragma once");
    }
  }

  static bool ends_with_guard_macro(const std::string& directive) {
    // "#ifndef FOO_H" / "_H_" / "_HPP": trim trailing whitespace first.
    std::string s = directive;
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
      s.pop_back();
    }
    return ends_with(s, "_H") || ends_with(s, "_H_") || ends_with(s, "_HPP");
  }

  // R5: parallelism goes through core::parallel_for / core::ThreadPool so
  // the process-wide compute budget stays enforceable. The epoll reactor
  // (src/flare/reactor.*) is sanctioned: its event loop *is* the one
  // designed exception — a single dedicated thread owning every fd, with
  // all real work handed to a core::ThreadPool.
  void r5_no_raw_thread() {
    if (starts_with(path_, "src/core/")) return;
    if (starts_with(path_, "src/flare/reactor.")) return;
    for (std::size_t i = 0; i + 2 < toks_.size(); ++i) {
      if (!is_ident(toks_[i], "std") || !is_punct(toks_[i + 1], "::") ||
          !is_ident(toks_[i + 2], "thread")) {
        continue;
      }
      // std::thread::hardware_concurrency() is member access, not a spawn.
      const Token* after = i + 3 < toks_.size() ? &toks_[i + 3] : nullptr;
      if (after != nullptr && is_punct(*after, "::")) continue;
      flag(5, toks_[i], "raw std::thread outside src/core/; use "
                        "core::parallel_for or core::ThreadPool");
    }
  }

  // R6: blocking waits are retry loops in disguise; they go through
  // core::Backoff so every delay is bounded, jittered and visible.
  void r6_no_naked_sleep() {
    if (starts_with(path_, "src/core/backoff.")) return;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokKind::kIdent) continue;
      if (t.text != "sleep_for" && t.text != "sleep_until" && t.text != "usleep") {
        continue;
      }
      const Token* n = next(i);
      if (n == nullptr || !is_punct(*n, "(")) continue;
      flag(6, t, "naked " + t.text + "() outside src/core/backoff.*; "
                 "delays go through core::Backoff");
    }
  }

  // R7: every contribution passes through UpdateValidator::admit; calling
  // Aggregator::accept directly bypasses screening and telemetry. Raw
  // `::accept(` socket calls are not member calls and do not match.
  void r7_validator_bypass() {
    if (!starts_with(path_, "src/flare/")) return;
    if (ends_with(path_, "validator.cpp")) return;
    for (std::size_t i = 1; i + 1 < toks_.size(); ++i) {
      if (!is_ident(toks_[i], "accept")) continue;
      const Token& p = toks_[i - 1];
      if (!is_punct(p, ".") && !is_punct(p, "->")) continue;
      if (!is_punct(toks_[i + 1], "(")) continue;
      flag(7, toks_[i], "direct Aggregator::accept call; contributions go "
                        "through UpdateValidator::admit");
    }
  }

  // R8: library code logs through the structured event API; the legacy
  // Logger string methods survive only inside src/core/.
  void r8_legacy_logger() {
    if (starts_with(path_, "src/core/")) return;
    for (std::size_t i = 1; i + 1 < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokKind::kIdent) continue;
      if (t.text != "debug" && t.text != "info" && t.text != "warn" &&
          t.text != "error") {
        continue;
      }
      const Token& p = toks_[i - 1];
      if (!is_punct(p, ".") && !is_punct(p, "->")) continue;
      if (!is_punct(toks_[i + 1], "(")) continue;
      flag(8, t, "legacy Logger::" + t.text + "() outside src/core/; use "
                 "LOG(level).msg(...).kv(...)");
    }
  }

  // R9: unordered-container iteration order is a per-process accident; in
  // aggregation/serialization/checkpoint/wire code it silently breaks the
  // bit-identical-runs contract. Membership tests (find/count/insert) are
  // fine; iteration is not.
  void r9_unordered_iteration() {
    if (!r9_in_scope(path_)) return;
    const std::set<std::string> unordered_vars = collect_unordered_vars();
    if (unordered_vars.empty()) return;

    for (std::size_t i = 0; i < toks_.size(); ++i) {
      // (a) range-for over an unordered container.
      if (is_ident(toks_[i], "for") && i + 1 < toks_.size() &&
          is_punct(toks_[i + 1], "(")) {
        const std::size_t close = matching(toks_, i + 1);
        std::size_t colon = toks_.size();
        int depth = 0;
        for (std::size_t j = i + 2; j < close; ++j) {
          if (toks_[j].kind != TokKind::kPunct) continue;
          if (toks_[j].text == "(") ++depth;
          else if (toks_[j].text == ")") --depth;
          else if (toks_[j].text == ":" && depth == 0) { colon = j; break; }
        }
        for (std::size_t j = colon + 1; j < close && j < toks_.size(); ++j) {
          if (toks_[j].kind == TokKind::kIdent &&
              unordered_vars.count(toks_[j].text)) {
            flag(9, toks_[j], "iteration over unordered container '" +
                              toks_[j].text + "' in determinism-sensitive "
                              "code; use std::map/std::set or sort first");
            break;
          }
        }
      }
      // (b) explicit begin() on an unordered container. Keyed on the
      // begin-family only: `m.find(k) != m.end()` is the membership idiom
      // and stays legal; obtaining a *starting* iterator is what starts an
      // order-dependent traversal.
      if (toks_[i].kind == TokKind::kIdent &&
          unordered_vars.count(toks_[i].text) && i + 3 < toks_.size()) {
        const Token& dot = toks_[i + 1];
        const Token& fn = toks_[i + 2];
        if ((is_punct(dot, ".") || is_punct(dot, "->")) &&
            fn.kind == TokKind::kIdent &&
            (fn.text == "begin" || fn.text == "cbegin" || fn.text == "rbegin") &&
            is_punct(toks_[i + 3], "(")) {
          flag(9, fn, "ordered traversal of unordered container '" +
                      toks_[i].text + "' in determinism-sensitive code");
        }
      }
    }
  }

  std::set<std::string> collect_unordered_vars() const {
    std::set<std::string> vars;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokKind::kIdent) continue;
      if (t.text != "unordered_map" && t.text != "unordered_set" &&
          t.text != "unordered_multimap" && t.text != "unordered_multiset") {
        continue;
      }
      std::size_t j = i + 1;
      if (j < toks_.size() && is_punct(toks_[j], "<")) {
        const std::size_t close = matching(toks_, j);
        if (close == toks_.size()) continue;
        j = close + 1;
      }
      // Skip declarator decorations between type and name.
      while (j < toks_.size() &&
             (is_punct(toks_[j], "&") || is_punct(toks_[j], "*") ||
              is_ident(toks_[j], "const"))) {
        ++j;
      }
      if (j < toks_.size() && toks_[j].kind == TokKind::kIdent) {
        vars.insert(toks_[j].text);
      }
    }
    return vars;
  }

  // R10: a blocking transport/sleep call while a lock is held turns one
  // slow peer into a stalled server. Lexical lock-region tracking: a
  // lock_guard/unique_lock/scoped_lock/MutexLock declaration opens a region
  // at its brace depth; `.unlock()` suspends it, `.lock()` resumes it, and
  // the closing brace of the declaring scope ends it.
  void r10_blocking_under_lock() {
    struct Lock {
      std::string var;
      int depth;
      bool active;
    };
    std::vector<Lock> locks;
    int depth = 0;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (is_punct(t, "{")) {
        ++depth;
        continue;
      }
      if (is_punct(t, "}")) {
        --depth;
        while (!locks.empty() && locks.back().depth > depth) locks.pop_back();
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;

      if (t.text == "lock_guard" || t.text == "unique_lock" ||
          t.text == "scoped_lock" || t.text == "MutexLock") {
        std::size_t j = i + 1;
        if (j < toks_.size() && is_punct(toks_[j], "<")) {
          const std::size_t close = matching(toks_, j);
          if (close == toks_.size()) continue;
          j = close + 1;
        }
        if (j + 1 < toks_.size() && toks_[j].kind == TokKind::kIdent &&
            is_punct(toks_[j + 1], "(")) {
          locks.push_back({toks_[j].text, depth, true});
        }
        continue;
      }

      // var.unlock() / var.lock() toggles the innermost matching region.
      if ((t.text == "unlock" || t.text == "lock") && i >= 2 &&
          (is_punct(toks_[i - 1], ".") || is_punct(toks_[i - 1], "->")) &&
          toks_[i - 2].kind == TokKind::kIdent && i + 1 < toks_.size() &&
          is_punct(toks_[i + 1], "(")) {
        for (auto it = locks.rbegin(); it != locks.rend(); ++it) {
          if (it->var == toks_[i - 2].text) {
            it->active = (t.text == "lock");
            break;
          }
        }
        continue;
      }

      const Lock* held = nullptr;
      for (const Lock& l : locks) {
        if (l.active) held = &l;
      }
      if (held == nullptr) continue;

      const bool next_is_call =
          i + 1 < toks_.size() && is_punct(toks_[i + 1], "(");
      if (!next_is_call) continue;

      const bool member = i >= 1 && (is_punct(toks_[i - 1], ".") ||
                                     is_punct(toks_[i - 1], "->"));
      const bool global_scope =
          i >= 1 && is_punct(toks_[i - 1], "::") &&
          (i < 2 || toks_[i - 2].kind != TokKind::kIdent);

      const bool blocking_name =
          t.text == "read_frame" || t.text == "write_frame" ||
          t.text == "sleep_for" || t.text == "sleep_until" ||
          t.text == "usleep" || t.text == "sleep_next" ||
          t.text == "try_again" || t.text == "sleep_ms";
      // The reactor's sockets are all O_NONBLOCK: its global-scope
      // ::send/::recv/::accept/::connect return EAGAIN instead of blocking,
      // so holding a lock across them cannot stall the server. Sleeps and
      // member `.call(` (a full RPC round trip) stay flagged even there.
      const bool reactor_nonblocking =
          starts_with(path_, "src/flare/reactor.");
      const bool blocking_syscall =
          !reactor_nonblocking && global_scope &&
          (t.text == "connect" || t.text == "recv" || t.text == "send" ||
           t.text == "accept");
      const bool blocking_rpc = member && t.text == "call";

      if (blocking_name || blocking_syscall || blocking_rpc) {
        flag(10, t, "blocking call '" + t.text + "(' while lock '" +
                    held->var + "' is held; release the lock before "
                    "transport or sleep calls");
      }
    }
  }

  // R11: a dropped Status/Result is a swallowed failure. (a) the types
  // themselves must be [[nodiscard]] so the compiler enforces use at every
  // call site; (b) the linter additionally flags statement-level discarded
  // calls of known Status/Result-returning functions, which catches files
  // the compiler has not seen yet (e.g. dead configurations).
  void r11_nodiscard() {
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      const Token& kw = toks_[i];
      if (!is_ident(kw, "struct") && !is_ident(kw, "class")) continue;
      const Token* p = prev(i);
      if (p != nullptr && is_ident(*p, "enum")) continue;
      std::size_t j = i + 1;
      bool has_nodiscard = false;
      while (j + 1 < toks_.size() && is_punct(toks_[j], "[") &&
             is_punct(toks_[j + 1], "[")) {
        const std::size_t close = matching(toks_, j);  // outer ']'
        if (close == toks_.size()) break;
        for (std::size_t k = j; k <= close; ++k) {
          if (is_ident(toks_[k], "nodiscard")) has_nodiscard = true;
        }
        j = close + 1;
      }
      if (j >= toks_.size() || toks_[j].kind != TokKind::kIdent) continue;
      const Token& name = toks_[j];
      if (!ends_with(name.text, "Status") && !ends_with(name.text, "Result")) {
        continue;
      }
      const Token* after = j + 1 < toks_.size() ? &toks_[j + 1] : nullptr;
      const bool is_definition =
          after != nullptr && (is_punct(*after, "{") || is_punct(*after, ":") ||
                               is_ident(*after, "final"));
      if (is_definition && !has_nodiscard) {
        flag(11, name, "type '" + name.text + "' looks like a status/result "
                       "carrier; mark it [[nodiscard]]");
      }
    }

    // (b) statement-level discarded calls of known nodiscard-returning
    // functions: the statement is a pure identifier/member chain ending in
    // the call, and the call's ')' is immediately followed by ';'.
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokKind::kIdent || !nodiscard_fns_.count(t.text)) continue;
      if (!is_punct(toks_[i + 1], "(")) continue;
      const std::size_t close = matching(toks_, i + 1);
      if (close + 1 >= toks_.size() || !is_punct(toks_[close + 1], ";")) {
        continue;
      }
      // Walk back to the statement boundary; everything in between must be
      // part of one call chain (idents, ".", "->", "::").
      bool chain = true;
      std::size_t start = i;
      while (start > 0) {
        const Token& b = toks_[start - 1];
        if (b.kind == TokKind::kIdent || is_punct(b, ".") ||
            is_punct(b, "->") || is_punct(b, "::")) {
          --start;
          continue;
        }
        if (is_punct(b, ";") || is_punct(b, "{") || is_punct(b, "}") ||
            b.kind == TokKind::kPreproc) {
          break;  // clean statement boundary
        }
        chain = false;
        break;
      }
      if (!chain) continue;
      const std::string& first = toks_[start].text;
      if (first == "return" || first == "co_return" || first == "co_yield" ||
          first == "throw" || first == "delete") {
        continue;
      }
      // The chain must actually end at this call: tokens between `start`
      // and `i` are qualifiers/objects only (no second call).
      bool pure = true;
      for (std::size_t k = start; k < i; ++k) {
        if (toks_[k].kind != TokKind::kIdent && !is_punct(toks_[k], ".") &&
            !is_punct(toks_[k], "->") && !is_punct(toks_[k], "::")) {
          pure = false;
          break;
        }
      }
      if (!pure) continue;
      // `SendStatus send_all(...);` — an identifier right before the name
      // means this is a declaration (type then declarator), not a call.
      if (i > start && toks_[i - 1].kind == TokKind::kIdent) continue;
      flag(11, t, "discarded call to '" + t.text + "()' which returns a "
                  "[[nodiscard]] status/result; use the value or cast to "
                  "(void) with a reason");
    }
  }

  // R12: the pairwise-mask secret machinery — the dealer and the pair keys
  // it derives — stays confined to the secure_agg module and the
  // provisioning ceremony that would distribute the keys. Everything else
  // goes through the factory (make_secure_agg_mask_filter) and the
  // MaskRecoveryCapable interface, so no other layer can ever see (or log,
  // or serialize) key material.
  void r12_secure_agg_containment() {
    if (starts_with(path_, "src/flare/secure_agg.")) return;
    if (starts_with(path_, "src/flare/provision.")) return;
    for (const Token& t : toks_) {
      if (t.kind != TokKind::kIdent) continue;
      if (t.text != "SecureAggregationDealer" && t.text != "pair_key") {
        continue;
      }
      flag(12, t, "'" + t.text + "' referenced outside src/flare/secure_agg.* "
                  "and src/flare/provision.*; masking key material is "
                  "confined there — use make_secure_agg_mask_filter and the "
                  "MaskRecoveryCapable interface instead");
    }
  }

  // R13: the durability-critical units — the checkpoint persistor and the
  // round journal — must never write through raw stream/stdio APIs. Every
  // byte they put on disk goes through the core durable-io helpers
  // (core::durable_write, core::Wal), which own the write-temp + fsync +
  // rename dance; a stray ofstream there silently reintroduces the torn
  // checkpoints DESIGN.md §15 exists to rule out. Reads (ifstream/fread)
  // stay legal — only the write path must be crash-safe.
  void r13_durable_writes_only() {
    if (!starts_with(path_, "src/flare/persistor.") &&
        !starts_with(path_, "src/flare/journal.")) {
      return;
    }
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind != TokKind::kIdent) continue;
      if (t.text == "ofstream" || t.text == "FILE") {
        flag(13, t, "raw '" + t.text + "' in durability-critical code; "
                    "write through core::durable_write / core::Wal");
        continue;
      }
      if (t.text == "fopen" || t.text == "fwrite") {
        const Token* n = next(i);
        if (n == nullptr || !is_punct(*n, "(")) continue;
        flag(13, t, t.text + "() in durability-critical code; write through "
                    "core::durable_write / core::Wal");
        continue;
      }
      // Member `.write(` / `->write(`: the ostream/fd write idiom.
      if (t.text == "write" && i >= 1 &&
          (is_punct(toks_[i - 1], ".") || is_punct(toks_[i - 1], "->")) &&
          i + 1 < toks_.size() && is_punct(toks_[i + 1], "(")) {
        flag(13, t, "raw stream .write() in durability-critical code; write "
                    "through core::durable_write / core::Wal");
      }
    }
  }

  // R14: a FederatedServer is only ever constructed by the JobRunner
  // registry (src/flare/jobs.*) — hosting every server behind the one
  // registry is what keeps job ids collision-checked, frames routable by
  // job, and the admin console complete. References and pointers
  // (FederatedServer& / FederatedServer*) stay legal everywhere; only
  // *construction* is confined. server.* itself is exempt (the class
  // declares and defines its own constructors).
  void r14_server_via_job_runner() {
    if (starts_with(path_, "src/flare/jobs.")) return;
    if (starts_with(path_, "src/flare/server.")) return;
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (!is_ident(toks_[i], "FederatedServer")) continue;
      const Token* p = prev(i);
      bool construction = false;
      // make_unique<FederatedServer>(...) / make_shared<FederatedServer>
      if (p != nullptr && is_punct(*p, "<") && i >= 2 &&
          (is_ident(toks_[i - 2], "make_unique") ||
           is_ident(toks_[i - 2], "make_shared"))) {
        construction = true;
      }
      // new FederatedServer(...)
      if (p != nullptr && is_ident(*p, "new")) construction = true;
      if (!construction && i + 1 < toks_.size()) {
        const Token& n = toks_[i + 1];
        // FederatedServer server(...) / FederatedServer server{...}
        if (n.kind == TokKind::kIdent && i + 2 < toks_.size() &&
            (is_punct(toks_[i + 2], "(") || is_punct(toks_[i + 2], "{"))) {
          construction = true;
        }
        // FederatedServer(...) / FederatedServer{...} temporary
        if (is_punct(n, "(") || is_punct(n, "{")) construction = true;
      }
      if (construction) {
        flag(14, toks_[i],
             "FederatedServer constructed outside src/flare/jobs.*; submit a "
             "JobSpec to the JobRunner registry instead (keeps job ids "
             "unique, frames routable, and the admin console complete)");
      }
    }
  }

  const std::string& path_;
  const std::vector<Token>& toks_;
  const std::map<int, std::set<int>>& exemptions_;
  const std::set<std::string>& nodiscard_fns_;
  std::vector<Finding>& out_;
};

/// Cross-file pass: function names declared as returning a *Status/*Result
/// type. Pattern: <TypeEndingInStatusOrResult> <ident> "(" — deliberately
/// loose (it also catches variable declarations with ctor arguments), which
/// only matters if such a variable name is later *called* and discarded.
std::set<std::string> collect_nodiscard_fns(const std::vector<FileUnit>& files) {
  std::set<std::string> fns;
  for (const FileUnit& f : files) {
    const std::vector<Token>& toks = f.lx.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
      const Token& ty = toks[i];
      if (ty.kind != TokKind::kIdent) continue;
      if (!ends_with(ty.text, "Status") && !ends_with(ty.text, "Result")) {
        continue;
      }
      const Token& name = toks[i + 1];
      if (name.kind != TokKind::kIdent) continue;
      if (!is_punct(toks[i + 2], "(")) continue;
      fns.insert(name.text);
    }
  }
  return fns;
}

}  // namespace

std::vector<Finding> run_rules(const std::vector<FileUnit>& files) {
  const std::set<std::string> nodiscard_fns = collect_nodiscard_fns(files);
  std::vector<Finding> out;
  for (const FileUnit& f : files) {
    RuleRunner(f, nodiscard_fns, out).run();
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.rule < b.rule;
  });
  return out;
}

const char* rule_summary(int rule) {
  switch (rule) {
    case 1: return "no rand()/srand(): randomness flows through seeded core::Rng";
    case 2: return "no naked new/delete in src/flare/: ownership crosses threads";
    case 3: return "no <iostream> outside the logging sink";
    case 4: return "headers use #pragma once";
    case 5: return "no raw std::thread outside src/core/ (epoll reactor sanctioned)";
    case 6: return "no naked sleeps outside core::Backoff";
    case 7: return "contributions go through UpdateValidator::admit";
    case 8: return "structured logging only outside src/core/";
    case 9: return "no unordered-container iteration in determinism-sensitive code";
    case 10: return "no blocking transport/sleep call while a lock is held "
                    "(the reactor's nonblocking socket I/O sanctioned)";
    case 11: return "Status/Result types are [[nodiscard]] and never dropped";
    case 12: return "secure-aggregation key material (dealer/pair keys) stays "
                    "inside src/flare/secure_agg.* and provisioning";
    case 13: return "persistor/journal write only through core durable-io "
                    "(durable_write / Wal), never raw streams";
    case 14: return "FederatedServer is constructed only by the JobRunner "
                    "registry (src/flare/jobs.*)";
    default: return "";
  }
}

}  // namespace cflint
