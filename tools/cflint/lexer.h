// Token-stream lexer for cflint.
//
// The grep-era linter (scripts/lint.sh before the cflint PR) matched rule
// patterns against raw source text, which meant comments, string literals
// and banned-pattern *mentions* in documentation tripped rules. This lexer
// gives every rule a comment- and string-free token stream instead:
//
//   * `//` and `/* */` comments are consumed (and mined for exemption
//     markers, see below) but never become tokens;
//   * string literals — including escapes and raw strings
//     (`R"delim(...)delim"`, with encoding prefixes) — and character
//     literals become single kString/kChar tokens whose *content* is never
//     pattern-matched;
//   * preprocessor directives (with `\` line continuations) are folded into
//     one kPreproc token per logical line so include/guard rules see the
//     whole directive;
//   * `::` and `->` are emitted as single punctuation tokens because nearly
//     every rule keys on "qualified name" or "member access"; all other
//     punctuation is single-character (so template-argument `>`s can be
//     balanced without a `>>` special case).
//
// Exemption markers: a comment containing `R<n>-exempt:` exempts rule n on
// the comment's own line(s). When the comment is alone on its line (only
// whitespace before it), the exemption also covers the *next* line — that
// is the clang-format-proof form, since a formatter may move a trailing
// comment onto its own line above the code it annotates.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cflint {

enum class TokKind {
  kIdent,    // identifiers and keywords
  kNumber,   // pp-number (we never inspect the digits)
  kString,   // any string literal, prefixes and raw strings included
  kChar,     // character literal
  kPunct,    // "::" and "->" multi-char; everything else single-char
  kPreproc,  // one whole logical preprocessor line, continuations folded
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based
  int col = 0;   // 1-based, byte offset within the line
};

struct LexResult {
  std::vector<Token> tokens;
  /// rule number -> set of exempted 1-based line numbers.
  std::map<int, std::set<int>> exemptions;
};

/// Lexes one translation unit. Never throws on malformed input: an
/// unterminated literal or comment simply runs to end of file (the real
/// compiler will reject the file; the linter should not crash first).
LexResult lex(const std::string& source);

}  // namespace cflint
