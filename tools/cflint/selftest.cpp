#include "selftest.h"

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lexer.h"
#include "rules.h"

namespace cflint {

namespace {

struct Case {
  const char* name;
  const char* path;     // virtual repo-relative path (drives rule scoping)
  const char* source;
  // Expected findings as (rule, line) pairs; empty = must be clean.
  std::vector<std::pair<int, int>> expect;
};

// Each violating fixture plants exactly the banned pattern; each clean
// fixture contains the same pattern *with* an `Rn-exempt:` annotation (or
// the sanctioned alternative), proving both the detection and the
// exemption path. Comment/string decoys prove the lexer does its job.
const std::vector<Case>& cases() {
  static const std::vector<Case> kCases = {
      {"R1 rand() call", "src/train/bad_rng.cpp",
       "// rand() in a comment is fine\n"
       "const char* s = \"rand()\";\n"
       "int f() { return std::rand() % 7; }\n"
       "int g() { srand(42); return 0; }\n",
       {{1, 3}, {1, 4}}},
      {"R1 member rand is not libc rand", "src/train/ok_rng.cpp",
       "int f(core::Rng& rng) { return rng.rand(); }\n"
       "int g(Other& o) { return o->rand(); }\n",
       {}},
      {"R1 exempt", "src/train/exempt_rng.cpp",
       "// R1-exempt: fixture proves the exemption path\n"
       "int f() { return std::rand(); }\n",
       {}},

      {"R2 naked new in flare", "src/flare/bad_own.cpp",
       "void f() { auto* p = new int(3); delete p; }\n",
       {{2, 1}, {2, 1}}},
      {"R2 deleted member + exempt", "src/flare/ok_own.cpp",
       "struct T { T(const T&) = delete; };\n"
       "// R2-exempt: arena handoff audited in PR 6\n"
       "void f() { auto* p = new int(3); delete p; }  // R2-exempt: ditto\n",
       {}},

      {"R3 iostream include", "src/flare/bad_io.cpp",
       "#include <iostream>\n",
       {{3, 1}}},
      {"R3 iostream allowed in sink", "src/core/logging.cpp",
       "#include <iostream>\n",
       {}},

      {"R4 guardless header", "src/nn/bad_hdr.h",
       "int f();\n",
       {{4, 1}}},
      {"R4 legacy guard", "src/nn/bad_guard.h",
       "#ifndef BAD_GUARD_H\n#define BAD_GUARD_H\n#pragma once\n#endif\n",
       {{4, 1}}},
      {"R4 pragma once clean", "src/nn/ok_hdr.h",
       "#pragma once\nint f();\n",
       {}},

      {"R5 raw thread", "src/flare/bad_thread.cpp",
       "void f() { std::thread t([] {}); t.join(); }\n",
       {{5, 1}}},
      {"R5 reactor event-loop thread sanctioned", "src/flare/reactor.cpp",
       "void EpollReactor::start() { reactor_thread_ = std::thread([this] { loop(); }); }\n",
       {}},
      {"R5 hardware_concurrency + exempt", "src/flare/ok_thread.cpp",
       "unsigned f() { return std::thread::hardware_concurrency(); }\n"
       "// R5-exempt: blocking I/O thread, joined in stop()\n"
       "void g() { std::thread t([] {}); t.join(); }\n",
       {}},

      {"R6 naked sleep", "src/flare/bad_sleep.cpp",
       "void f() { std::this_thread::sleep_for(std::chrono::seconds(1)); }\n",
       {{6, 1}}},
      {"R6 backoff + exempt", "src/core/backoff.cpp",
       "void f() { std::this_thread::sleep_for(std::chrono::seconds(1)); }\n",
       {}},
      {"R6 exempt line", "src/flare/ok_sleep.cpp",
       "// R6-exempt: harness pacing, not a retry loop\n"
       "void f() { std::this_thread::sleep_for(std::chrono::seconds(1)); }\n",
       {}},

      {"R7 validator bypass", "src/flare/bad_accept.cpp",
       "void f(Aggregator& a, const Contribution& c) { a.accept(c); }\n",
       {{7, 1}}},
      {"R7 socket accept + validator.cpp", "src/flare/validator.cpp",
       "int f(int fd) { return ::accept(fd, nullptr, nullptr); }\n"
       "void g(Aggregator& a, const Contribution& c) { a.accept(c); }\n",
       {}},

      {"R8 legacy logger", "src/flare/bad_log.cpp",
       "void f(core::Logger& log) { log.info(\"hello\"); }\n",
       {{8, 1}}},
      {"R8 core shim + exempt", "src/flare/ok_log.cpp",
       "// R8-exempt: NVFlare-style demo line, sanctioned\n"
       "void f(core::Logger& log) { log.info(\"hello\"); }\n",
       {}},

      {"R9 unordered iteration", "src/flare/aggregator_ext.cpp",
       "#include <unordered_map>\n"
       "void f(const std::unordered_map<std::string, double>& weights) {\n"
       "  for (const auto& kv : weights) { use(kv); }\n"
       "  for (auto it = weights.begin(); it != weights.end(); ++it) use(*it);\n"
       "}\n",
       {{9, 3}, {9, 4}}},
      {"R9 membership only is fine", "src/flare/aggregator_ok.cpp",
       "#include <unordered_set>\n"
       "bool f(const std::unordered_set<std::string>& seen,\n"
       "       const std::string& k) {\n"
       "  return seen.count(k) > 0 || seen.find(k) != seen.end();\n"
       "}\n",
       {}},
      {"R9 out of scope path", "src/models/free_iter.cpp",
       "void f(const std::unordered_map<int, int>& m) {\n"
       "  for (const auto& kv : m) use(kv);\n"
       "}\n",
       {}},
      {"R9 exempt", "src/flare/persistor_ext.cpp",
       "void f(const std::unordered_map<int, int>& m) {\n"
       "  // R9-exempt: keys copied and sorted below before serialization\n"
       "  for (const auto& kv : m) collect(kv);\n"
       "}\n",
       {}},

      {"R10 blocking under lock", "src/flare/bad_hold.cpp",
       "void f(core::Mutex& mu, Conn& c, Frame& fr) {\n"
       "  core::MutexLock lock(mu);\n"
       "  c.write_frame(fr);\n"
       "  c->call(fr);\n"
       "}\n",
       {{10, 3}, {10, 4}}},
      {"R10 unlock first", "src/flare/ok_hold.cpp",
       "void f(core::Mutex& mu, Conn& c, Frame& fr) {\n"
       "  core::MutexLock lock(mu);\n"
       "  lock.unlock();\n"
       "  c.write_frame(fr);\n"
       "  lock.lock();\n"
       "}\n"
       "void g(std::mutex& mu, Conn& c, Frame& fr) {\n"
       "  { std::lock_guard<std::mutex> lk(mu); prep(); }\n"
       "  c.write_frame(fr);\n"
       "}\n",
       {}},
      {"R10 exempt", "src/flare/exempt_hold.cpp",
       "void f(core::Mutex& mu, Conn& c, Frame& fr) {\n"
       "  core::MutexLock lock(mu);\n"
       "  // R10-exempt: handshake frame, bounded by the connect timeout\n"
       "  c.write_frame(fr);\n"
       "}\n",
       {}},
      {"R10 reactor nonblocking sockets sanctioned", "src/flare/reactor.cpp",
       "void EpollReactor::flush(Conn& c) {\n"
       "  core::MutexLock lock(mu_);\n"
       "  ::send(c.fd, c.buf.data(), c.buf.size(), 0);\n"
       "  ::recv(c.fd, c.in.data(), c.in.size(), 0);\n"
       "}\n",
       {}},
      {"R10 reactor sleeps and RPCs still flagged", "src/flare/reactor.cpp",
       "void EpollReactor::bad(Conn& c) {\n"
       "  core::MutexLock lock(mu_);\n"
       "  core::Backoff::sleep_ms(5);\n"
       "  c.conn->call(frame);\n"
       "}\n",
       {{10, 3}, {10, 4}}},

      {"R11 missing nodiscard + discard", "src/flare/bad_status.cpp",
       "struct SendStatus { bool ok; };\n"
       "SendStatus send_all(Conn& c);\n"
       "void f(Conn& c) { send_all(c); }\n"
       "void g(Conn& c) { c.send_all(); }\n",
       {{11, 1}, {11, 3}, {11, 4}}},
      {"R11 clean", "src/flare/ok_status.cpp",
       "struct [[nodiscard]] SendStatus { bool ok; };\n"
       "SendStatus send_all(Conn& c);\n"
       "SendStatus f(Conn& c) { return send_all(c); }\n"
       "void g(Conn& c) { (void)send_all(c); }\n"
       "void h(Conn& c) { auto s = send_all(c); use(s); }\n",
       {}},
      {"R11 exempt", "src/flare/exempt_status.cpp",
       "// R11-exempt: forward declaration pulled from a vendored header\n"
       "struct SendStatus { bool ok; };\n"
       "SendStatus send_all(Conn& c);\n"
       "void f(Conn& c) {\n"
       "  // R11-exempt: best-effort farewell on shutdown path\n"
       "  send_all(c);\n"
       "}\n",
       {}},

      {"R12 dealer escape", "src/flare/simulator_bad.cpp",
       "// SecureAggregationDealer in a comment is fine\n"
       "const char* s = \"pair_key\";\n"
       "void f() { SecureAggregationDealer dealer(\"job\", 7); }\n"
       "void g(Dealer& d) { auto k = d.pair_key(\"a\", \"b\"); }\n",
       {{12, 3}, {12, 4}}},
      {"R12 confined to secure_agg and provisioning", "src/flare/secure_agg.cpp",
       "void f() { SecureAggregationDealer dealer(\"job\", 7); }\n"
       "void g(SecureAggregationDealer& d) { auto k = d.pair_key(\"a\", \"b\"); }\n",
       {}},
      {"R12 provisioning allowed", "src/flare/provision.cpp",
       "void f(SecureAggregationDealer& d) { auto k = d.pair_key(\"a\", \"b\"); }\n",
       {}},
      {"R12 exempt", "src/flare/exempt_dealer.cpp",
       "// R12-exempt: fixture proves the exemption path\n"
       "void f() { SecureAggregationDealer dealer(\"job\", 7); }\n",
       {}},

      {"R13 raw writes in journal", "src/flare/journal.cpp",
       "// ofstream in a comment is fine\n"
       "const char* s = \"fwrite(\";\n"
       "void f() { std::ofstream out(\"x.bin\", std::ios::binary); }\n"
       "void g(std::ostream& os, const char* p, long n) { os.write(p, n); }\n"
       "void h(const char* p) { FILE* fp = fopen(p, \"wb\"); fwrite(p, 1, 1, fp); }\n",
       {{13, 3}, {13, 4}, {13, 5}, {13, 5}, {13, 5}}},
      {"R13 reads and durable-io stay legal", "src/flare/persistor.cpp",
       "void f(const std::string& p) { std::ifstream in(p, std::ios::binary); }\n"
       "void g(const std::string& p, const std::vector<std::uint8_t>& b) {\n"
       "  core::durable_write(p, b);\n"
       "}\n"
       "void h(core::ByteWriter& w) { w.write_u32(7); }\n",
       {}},
      {"R13 out of scope path", "src/flare/observability.cpp",
       "void f() { std::ofstream out(\"trace.json\"); }\n",
       {}},
      {"R13 exempt", "src/flare/journal.h",
       "#pragma once\n"
       "// R13-exempt: fixture proves the exemption path\n"
       "void f() { std::ofstream out(\"x.bin\"); }\n",
       {}},

      {"R14 server constructed outside the registry", "src/flare/sim_srv.cpp",
       "// FederatedServer in a comment is fine\n"
       "void f(FederatedServer& s) { s.abort(\"x\"); }\n"
       "FederatedServer* g(JobRunner& jobs) { return &jobs.server(\"a\"); }\n"
       "void h() { auto s = std::make_unique<FederatedServer>(cfg, reg); }\n"
       "void i() { FederatedServer server(cfg, reg, model, agg); }\n",
       {{14, 4}, {14, 5}}},
      {"R14 registry sources allowed", "src/flare/jobs.cpp",
       "void f(Job& j) { j.server = std::make_unique<FederatedServer>(c, r); }\n",
       {}},
      {"R14 server's own sources allowed", "src/flare/server.cpp",
       "FederatedServer::FederatedServer(ServerConfig config) {}\n",
       {}},
      {"R14 exempt", "src/flare/exempt_srv.cpp",
       "// R14-exempt: fixture proves the exemption path\n"
       "void f() { FederatedServer server(cfg, reg, model, agg); }\n",
       {}},
  };
  return kCases;
}

}  // namespace

bool run_selftest() {
  int failed = 0;
  for (const Case& c : cases()) {
    // Every case lexes and runs alone, so fixtures cannot mask each other
    // — except R11 part (b), which needs the declaring file in the same
    // batch; each fixture is self-contained for that reason.
    std::vector<FileUnit> files;
    files.push_back({c.path, lex(c.source)});
    const std::vector<Finding> got = run_rules(files);

    std::multiset<std::pair<int, int>> expect(c.expect.begin(), c.expect.end());
    std::multiset<std::pair<int, int>> actual;
    for (const Finding& f : got) actual.insert({f.rule, f.line});

    if (actual == expect) {
      std::printf("PASS  %s\n", c.name);
      continue;
    }
    ++failed;
    std::printf("FAIL  %s\n", c.name);
    for (const Finding& f : got) {
      std::printf("      got: %s:%d:%d: [R%d] %s\n", f.file.c_str(), f.line,
                  f.col, f.rule, f.message.c_str());
    }
    for (const auto& [rule, line] : expect) {
      std::printf("      expected: [R%d] at line %d\n", rule, line);
    }
  }
  if (failed == 0) {
    std::fprintf(stderr, "cflint self-test: all %zu cases passed\n",
                 cases().size());
    return true;
  }
  std::fprintf(stderr, "cflint self-test: %d of %zu cases FAILED\n", failed,
               cases().size());
  return false;
}

}  // namespace cflint
