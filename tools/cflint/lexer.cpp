#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace cflint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Scans `comment` for `R<n>-exempt:` markers and records rule->line
/// exemptions. `first_line` is the line the comment starts on;
/// `comment_only` means nothing but whitespace preceded the comment on that
/// line, in which case the line after the comment is exempt too.
void harvest_exemptions(const std::string& comment, int first_line,
                        int last_line, bool comment_only, LexResult& out) {
  for (std::size_t i = 0; i + 1 < comment.size(); ++i) {
    if (comment[i] != 'R' || !std::isdigit(static_cast<unsigned char>(comment[i + 1]))) {
      continue;
    }
    std::size_t j = i + 1;
    int rule = 0;
    while (j < comment.size() && std::isdigit(static_cast<unsigned char>(comment[j]))) {
      rule = rule * 10 + (comment[j] - '0');
      ++j;
    }
    if (comment.compare(j, 8, "-exempt:") != 0) continue;
    std::set<int>& lines = out.exemptions[rule];
    for (int ln = first_line; ln <= last_line; ++ln) lines.insert(ln);
    if (comment_only) lines.insert(last_line + 1);
    i = j;
  }
}

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  LexResult run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        advance();
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
        continue;
      }
      if (c == '#' && line_has_only_ws_) {
        lex_preproc();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        lex_line_comment();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        lex_block_comment();
        continue;
      }
      if (c == '"') {
        lex_string(/*raw=*/false);
        continue;
      }
      if (c == '\'') {
        lex_char();
        continue;
      }
      if (is_ident_start(c)) {
        lex_ident_or_literal_prefix();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        lex_number();
        continue;
      }
      lex_punct();
    }
    return std::move(result_);
  }

 private:
  char peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
      line_has_only_ws_ = true;
    } else {
      if (!std::isspace(static_cast<unsigned char>(src_[pos_]))) {
        line_has_only_ws_ = false;
      }
      ++col_;
    }
    ++pos_;
  }

  void emit(TokKind kind, std::size_t start, int line, int col) {
    result_.tokens.push_back(
        {kind, src_.substr(start, pos_ - start), line, col});
  }

  void lex_preproc() {
    const std::size_t start = pos_;
    const int line = line_, col = col_;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && peek(1) == '\n') {
        advance();
        advance();
        continue;
      }
      // A comment opener ends the directive for our purposes; the comment
      // is lexed (and mined for exemptions) on the next loop iteration.
      if (src_[pos_] == '/' && (peek(1) == '/' || peek(1) == '*')) break;
      if (src_[pos_] == '\n') break;
      advance();
    }
    emit(TokKind::kPreproc, start, line, col);
  }

  void lex_line_comment() {
    const std::size_t start = pos_;
    const int line = line_;
    const bool only = line_has_only_ws_;
    while (pos_ < src_.size() && src_[pos_] != '\n') advance();
    harvest_exemptions(src_.substr(start, pos_ - start), line, line, only,
                       result_);
  }

  void lex_block_comment() {
    const std::size_t start = pos_;
    const int first_line = line_;
    const bool only = line_has_only_ws_;
    advance();  // '/'
    advance();  // '*'
    while (pos_ < src_.size() && !(src_[pos_] == '*' && peek(1) == '/')) {
      advance();
    }
    if (pos_ < src_.size()) {
      advance();  // '*'
      advance();  // '/'
    }
    harvest_exemptions(src_.substr(start, pos_ - start), first_line, line_,
                       only, result_);
  }

  void lex_string(bool raw) {
    const std::size_t start = pos_;
    const int line = line_, col = col_;
    if (raw) {
      advance();  // opening '"'
      std::string delim;
      while (pos_ < src_.size() && src_[pos_] != '(') {
        delim += src_[pos_];
        advance();
      }
      const std::string closer = ")" + delim + "\"";
      while (pos_ < src_.size() &&
             src_.compare(pos_, closer.size(), closer) != 0) {
        advance();
      }
      for (std::size_t i = 0; i < closer.size() && pos_ < src_.size(); ++i) {
        advance();
      }
    } else {
      advance();  // opening '"'
      while (pos_ < src_.size() && src_[pos_] != '"' && src_[pos_] != '\n') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) advance();
        advance();
      }
      if (pos_ < src_.size() && src_[pos_] == '"') advance();
    }
    emit(TokKind::kString, start, line, col);
  }

  void lex_char() {
    const std::size_t start = pos_;
    const int line = line_, col = col_;
    advance();  // opening '\''
    while (pos_ < src_.size() && src_[pos_] != '\'' && src_[pos_] != '\n') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) advance();
      advance();
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') advance();
    emit(TokKind::kChar, start, line, col);
  }

  /// Identifiers, but an identifier that is a literal prefix glued to a
  /// quote (R"..., u8"..., L'...') restarts as the literal instead.
  void lex_ident_or_literal_prefix() {
    const std::size_t start = pos_;
    const int line = line_, col = col_;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) advance();
    const std::string text = src_.substr(start, pos_ - start);
    if (pos_ < src_.size() && (src_[pos_] == '"' || src_[pos_] == '\'')) {
      const bool is_raw = !text.empty() && text.back() == 'R' &&
                          (text == "R" || text == "LR" || text == "uR" ||
                           text == "UR" || text == "u8R");
      const bool is_prefix = is_raw || text == "L" || text == "u" ||
                             text == "U" || text == "u8";
      if (is_prefix) {
        if (src_[pos_] == '"') {
          lex_string(is_raw);
        } else {
          lex_char();
        }
        // Rewrite the literal token to include its prefix.
        Token& tok = result_.tokens.back();
        tok.text = text + tok.text;
        tok.line = line;
        tok.col = col;
        return;
      }
    }
    result_.tokens.push_back({TokKind::kIdent, text, line, col});
  }

  void lex_number() {
    const std::size_t start = pos_;
    const int line = line_, col = col_;
    // pp-number: digits, letters, underscores, dots, and digit separators.
    while (pos_ < src_.size() &&
           (is_ident_char(src_[pos_]) || src_[pos_] == '.' ||
            src_[pos_] == '\'')) {
      if (src_[pos_] == '\'' && !is_ident_char(peek(1))) break;
      advance();
    }
    emit(TokKind::kNumber, start, line, col);
  }

  void lex_punct() {
    const std::size_t start = pos_;
    const int line = line_, col = col_;
    const char c = src_[pos_];
    if ((c == ':' && peek(1) == ':') || (c == '-' && peek(1) == '>')) {
      advance();
      advance();
    } else {
      advance();
    }
    emit(TokKind::kPunct, start, line, col);
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool line_has_only_ws_ = true;
  LexResult result_;
};

}  // namespace

LexResult lex(const std::string& source) { return Lexer(source).run(); }

}  // namespace cflint
