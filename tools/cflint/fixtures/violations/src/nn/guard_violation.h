// R4 fixture: header without #pragma once.
int forward();
