// R1 fixture: libc randomness instead of seeded core::Rng.
int roll() { return std::rand() % 6; }
