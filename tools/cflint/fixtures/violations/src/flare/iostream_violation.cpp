// R3 fixture: direct std stream access outside the logging sink.
#include <iostream>
