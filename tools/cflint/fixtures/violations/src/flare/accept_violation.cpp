// R7 fixture: contribution handed to the aggregator without validation.
void ingest(Aggregator& agg, const Contribution& c) { agg.accept(c); }
