// R13 fixture: raw stream write inside the round journal, bypassing the
// core durable-io helpers (no fsync, no atomic rename — a torn record
// waiting to happen).
void append_record(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}
