// R8 fixture: legacy Logger string method outside src/core/.
void announce(core::Logger& log) { log.info("round started"); }
