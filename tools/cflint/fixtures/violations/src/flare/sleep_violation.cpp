// R6 fixture: naked sleep outside core::Backoff.
void pace() { std::this_thread::sleep_for(std::chrono::milliseconds(5)); }
