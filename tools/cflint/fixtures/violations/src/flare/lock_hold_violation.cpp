// R10 fixture: transport write while the round lock is held.
void flush(core::Mutex& mu, Connection& conn, const Frame& frame) {
  core::MutexLock lock(mu);
  conn.write_frame(frame);
}
