// R14 fixture: a FederatedServer built behind the JobRunner's back.
void rogue() {
  FederatedServer server(config, registry, model, std::move(aggregator));
  server.dispatcher();
}
