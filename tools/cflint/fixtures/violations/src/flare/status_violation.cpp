// R11 fixture: a status type without [[nodiscard]] and a dropped return.
struct DeliveryStatus { bool ok; };
DeliveryStatus deliver(Connection& conn);
void farewell(Connection& conn) { deliver(conn); }
