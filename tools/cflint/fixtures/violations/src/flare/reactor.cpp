// R10 fixture: the reactor scope rule only sanctions nonblocking socket
// syscalls — a sleep or a full RPC round trip under the reactor lock is
// still a violation.
void EpollReactor::bad(Conn& c) {
  core::MutexLock lock(mu_);
  core::Backoff::sleep_ms(5);
  c.conn->call(frame);
}
