// R9 fixture: unordered iteration on the aggregation path.
double total(const std::unordered_map<std::string, double>& weights) {
  double sum = 0.0;
  for (const auto& kv : weights) sum += kv.second;
  return sum;
}
