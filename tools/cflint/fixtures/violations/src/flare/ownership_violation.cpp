// R2 fixture: raw owning pointer in the flare runtime.
int* make() { return new int(42); }
void drop(int* p) { delete p; }
