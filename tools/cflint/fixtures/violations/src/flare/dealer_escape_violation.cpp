// R12 planted violation: secure-aggregation key material referenced
// outside src/flare/secure_agg.* / src/flare/provision.*.
void leak_masks() {
  SecureAggregationDealer dealer("job", 7);
  auto key = dealer.pair_key("site-1", "site-2");
  use(key);
}
