// R5 fixture: raw std::thread outside src/core/.
void spawn() { std::thread t([] {}); t.join(); }
