// R1-exempt: fixture proves the exemption path end to end.
int roll() { return std::rand() % 6; }
