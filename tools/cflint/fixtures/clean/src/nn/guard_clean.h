// R4 counterpart: #pragma once satisfies header hygiene.
#pragma once
int forward();
