// R5-exempt: blocking I/O thread, joined in stop().
void spawn() { std::thread t([] {}); t.join(); }
