// R6-exempt: harness pacing, not a retry loop.
void pace() { std::this_thread::sleep_for(std::chrono::milliseconds(5)); }
