// R12-exempt: fixture proves the exemption path
void sanctioned() { SecureAggregationDealer dealer("job", 7); }
