// R2-exempt: arena handoff, ownership audited in the cflint PR.
int* make() { return new int(42); }
void drop(int* p) { delete p; }  // R2-exempt: paired with make() above
