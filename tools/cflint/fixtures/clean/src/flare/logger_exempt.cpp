// R8-exempt: NVFlare-style demo line, sanctioned.
void announce(core::Logger& log) { log.info("round started"); }
