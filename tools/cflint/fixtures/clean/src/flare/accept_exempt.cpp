// R7-exempt: pre-validated replay path, sanctioned in DESIGN.md §12.
void ingest(Aggregator& agg, const Contribution& c) { agg.accept(c); }
