// R13 fixture: reads are legal, writes go through core durable-io, and the
// exemption annotation suppresses a deliberate raw write.
std::vector<char> read_back(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in), {});
}
void append_record(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  core::durable_write(path, bytes);
}
void scratch_dump(const std::string& path, const std::vector<char>& bytes) {
  // R13-exempt: debug-only dump behind CPPFLARE_JOURNAL_DUMP, never the log
  std::ofstream out(path, std::ios::binary);
  // R13-exempt: ditto
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}
