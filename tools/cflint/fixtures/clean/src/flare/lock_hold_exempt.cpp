void flush(core::Mutex& mu, Connection& conn, const Frame& frame) {
  core::MutexLock lock(mu);
  // R10-exempt: handshake frame, bounded by the connect timeout.
  conn.write_frame(frame);
}
