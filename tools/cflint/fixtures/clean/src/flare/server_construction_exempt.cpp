// R14 fixture: exempt construction plus non-construction decoys.
void rogue() {
  // R14-exempt: standalone harness bring-up, audited in the multi-job PR.
  FederatedServer server(config, registry, model, std::move(aggregator));
}
// References and pointers are not construction — legal everywhere.
void observe(FederatedServer& server) { use(server); }
FederatedServer* lookup(JobRunner& jobs) { return &jobs.server("job-a"); }
