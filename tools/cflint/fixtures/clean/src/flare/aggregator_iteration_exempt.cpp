double total(const std::unordered_map<std::string, double>& weights) {
  double sum = 0.0;
  // R9-exempt: summation is order-insensitive here by construction (fixture).
  for (const auto& kv : weights) sum += kv.second;
  return sum;
}
