// R3-exempt: fixture for the exemption path.
#include <iostream>
