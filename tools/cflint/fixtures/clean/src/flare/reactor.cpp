// Scope-rule fixture: the epoll reactor is sanctioned to own its event-loop
// thread (R5) and to issue nonblocking socket syscalls while holding its
// state lock (R10) — no exempt annotations needed in this path.
void EpollReactor::start() {
  reactor_thread_ = std::thread([this] { loop(); });
}
void EpollReactor::flush(Conn& c) {
  core::MutexLock lock(mu_);
  ::send(c.fd, c.outq.data(), c.outq.size(), 0);
  ::recv(c.fd, c.inbuf.data(), c.inbuf.size(), 0);
}
