// R11-exempt: vendored forward declaration, upstream owns the attribute.
struct DeliveryStatus { bool ok; };
DeliveryStatus deliver(Connection& conn);
void farewell(Connection& conn) {
  // R11-exempt: best-effort farewell on the shutdown path.
  deliver(conn);
}
