// Fig. 3 reproduction — live demonstration of the NVFlare-style pipeline.
//
// Runs the full federation with verbose logging so the output mirrors the
// paper's screenshot: simulator start, client registration with tokens,
// per-site local epochs with train_loss/valid_acc, aggregation lines, and
// the round loop. Also measures the paper's quoted "12.7 sec/local epoch"
// statistic for this reproduction.
#include <cstdio>

#include "bench_common.h"
#include "flare/simulator.h"
#include "models/lstm_classifier.h"
#include "train/clinical_learner.h"
#include "train/experiment.h"
#include "train/metrics.h"

int main() {
  using namespace cppflare;

  train::ExperimentScale scale = train::ExperimentScale::from_env();
  // The demo keeps the federation small so the log stays readable.
  scale.num_patients = std::min<std::int64_t>(scale.num_patients, 600);
  scale.fl_rounds = std::min<std::int64_t>(scale.fl_rounds, 2);
  bench::print_header("Fig. 3 — demonstration of BERT fine-tuning under cppflare",
                      scale);
  core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);

  const train::ClassificationData data = train::prepare_classification_data(scale);
  const models::ModelConfig mconfig = models::ModelConfig::bert_mini(
      data.tokenizer->vocab().size(), data.tokenizer->max_seq_len());

  core::Rng init_rng(scale.seed);
  models::BertForClassification initial(mconfig, init_rng);

  flare::SimulatorConfig sim;
  sim.num_clients = scale.num_clients;
  sim.num_rounds = scale.fl_rounds;
  sim.persist_path = "/tmp/cppflare_fig3_global_model.bin";

  train::LearnerOptions lopts;
  lopts.local_epochs = scale.local_epochs;
  lopts.batch_size = scale.batch_size;
  lopts.lr = scale.lr;
  lopts.verbose = true;  // the CiBertLearner lines of Fig. 3

  flare::SimulatorRunner runner(
      sim, initial.state_dict(), std::make_unique<flare::FedAvgAggregator>(true),
      [&](std::int64_t site, const std::string& name) {
        core::Rng site_rng(scale.seed + 100 + site);
        auto model = std::make_shared<models::BertForClassification>(mconfig,
                                                                     site_rng);
        return std::make_shared<train::ClinicalLearner>(
            name, std::move(model), data.shards[static_cast<std::size_t>(site)],
            data.valid, lopts);
      });
  const flare::SimulationResult result = runner.run();

  const double total_local_epochs = static_cast<double>(
      scale.num_clients * scale.fl_rounds * scale.local_epochs);
  std::printf("\nTraining cost: %.1f sec/local epoch (paper: 12.7 sec on 4x RTX "
              "2080 Ti; this run: one CPU core)\n",
              result.wall_seconds / total_local_epochs);
  std::printf("final global valid_acc (client-reported, sample-weighted): %.3f\n",
              result.history.back().valid_acc);
  std::printf("global model persisted to %s\n", sim.persist_path.c_str());
  std::printf("[fig3] done\n");
  return 0;
}
