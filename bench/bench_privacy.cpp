// Privacy runtime bench.
//
// Three measurements, all over the 8-site loopback-TCP federation with a
// trivial nudge learner so the numbers isolate the privacy machinery, not
// training compute:
//
//   1. masked vs unmasked rounds/s on a clean run — the steady-state cost
//      of quantize + pairwise masking + modular aggregation;
//   2. the same comparison with one site crashing mid-run, so every
//      post-crash masked round detours through the unmask-recovery wave —
//      both variants pay the round deadline, the delta is recovery itself;
//   3. a DP noise grid (threaded transport): final-model RMSE against the
//      noiseless reference and the accountant's epsilon spend per sigma,
//      epsilon reported as -1 when infinite (noise_multiplier == 0).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "flare/simulator.h"

namespace {

using namespace cppflare;

nn::StateDict tiny_model() {
  nn::StateDict d;
  d.insert("w", {{16}, std::vector<float>(16, 0.0f)});
  return d;
}

class NudgeLearner : public flare::Learner {
 public:
  NudgeLearner(std::string site, float target, std::int64_t crash_round)
      : site_(std::move(site)), target_(target), crash_round_(crash_round) {}

  flare::Dxo train(const flare::Dxo& global,
                   const flare::FLContext& ctx) override {
    if (crash_round_ >= 0 && ctx.current_round >= crash_round_) {
      throw Error("bench: site crashed mid-run");
    }
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v += 0.5f * (target_ - v);
    }
    flare::Dxo update(flare::DxoKind::kWeights, updated);
    update.set_meta_int(flare::Dxo::kMetaNumSamples, 10);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float target_;
  std::int64_t crash_round_;
};

struct RunResult {
  double rounds_per_sec = 0.0;
  double wall_seconds = 0.0;
  double epsilon = 0.0;
  nn::StateDict final_model;
};

struct RunSpec {
  std::int64_t rounds = 20;
  bool masked = false;
  bool use_tcp = true;
  std::int64_t crash_index = -1;   // site index that dies, -1 for none
  std::int64_t crash_round = -1;
  double dp_noise = -1.0;          // >= 0 enables DP at this multiplier
};

RunResult run_federation(const RunSpec& spec) {
  flare::SimulatorConfig config;
  config.job_id = "bench-privacy";
  config.num_clients = 8;
  config.num_rounds = spec.rounds;
  config.use_tcp = spec.use_tcp;
  config.compute_threads = -1;
  if (spec.crash_index >= 0) {
    // A crashed site never answers again; the round must close on the
    // deadline with the 7 survivors (and, when masked, recover their sum).
    config.min_clients = 4;
    config.round_deadline_ms = 300;
  }
  config.secure_agg.enabled = spec.masked;
  config.secure_agg.dealer_seed = 0xbe9c;
  if (spec.dp_noise >= 0.0) {
    config.dp.enabled = true;
    config.dp.clip_norm = 8.0;
    config.dp.noise_multiplier = spec.dp_noise;
    config.dp.delta = 1e-5;
  }
  // Uniform FedAvg: server-side sample weighting is rejected under masking
  // (masks only cancel through an unweighted sum), and the unmasked arms
  // must aggregate identically to stay comparable.
  flare::SimulatorRunner runner(
      config, tiny_model(), std::make_unique<flare::FedAvgAggregator>(false),
      [&spec](std::int64_t i, const std::string& name) {
        return std::make_shared<NudgeLearner>(
            name, static_cast<float>(i),
            i == spec.crash_index ? spec.crash_round : -1);
      });
  const flare::SimulationResult result = runner.run();
  if (result.aborted) {
    std::fprintf(stderr, "federation aborted: %s\n",
                 result.abort_reason.c_str());
    std::exit(1);
  }
  RunResult r;
  r.wall_seconds = result.wall_seconds;
  r.rounds_per_sec = static_cast<double>(spec.rounds) / result.wall_seconds;
  r.epsilon = result.dp_epsilon_spent;
  r.final_model = result.final_model;
  return r;
}

double rmse(const nn::StateDict& a, const nn::StateDict& b) {
  double sum = 0.0;
  std::int64_t n = 0;
  auto ib = b.entries().begin();
  for (auto ia = a.entries().begin(); ia != a.entries().end(); ++ia, ++ib) {
    for (std::size_t i = 0; i < ia->second.values.size(); ++i) {
      const double d = static_cast<double>(ia->second.values[i]) -
                       static_cast<double>(ib->second.values[i]);
      sum += d * d;
      ++n;
    }
  }
  return std::sqrt(sum / static_cast<double>(n));
}

double json_eps(double epsilon) {
  return std::isfinite(epsilon) ? epsilon : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  bench::quiet_logs();
  // A crashed site logs a warning per missed poll; keep only errors.
  core::LogConfig::instance().set_threshold(core::LogLevel::kError);

  const std::int64_t rounds = 20;
  std::printf("Privacy runtime: 8-site TCP federation, %lld rounds\n",
              static_cast<long long>(rounds));

  // 1. Steady-state masking cost.
  RunSpec plain_spec;
  plain_spec.rounds = rounds;
  const RunResult plain = run_federation(plain_spec);
  RunSpec masked_spec = plain_spec;
  masked_spec.masked = true;
  const RunResult masked = run_federation(masked_spec);
  const double mask_overhead = plain.rounds_per_sec / masked.rounds_per_sec;
  std::printf("  unmasked       : %7.1f rounds/s (%.3f s)\n",
              plain.rounds_per_sec, plain.wall_seconds);
  std::printf("  masked         : %7.1f rounds/s (%.3f s)  overhead %.2fx\n",
              masked.rounds_per_sec, masked.wall_seconds, mask_overhead);

  // 2. Recovery cost: one site dies at round 5, the rest of the run closes
  //    on the deadline — masked rounds additionally run the unmask wave.
  RunSpec drop_plain_spec = plain_spec;
  drop_plain_spec.crash_index = 7;
  drop_plain_spec.crash_round = 5;
  const RunResult drop_plain = run_federation(drop_plain_spec);
  RunSpec drop_masked_spec = drop_plain_spec;
  drop_masked_spec.masked = true;
  const RunResult drop_masked = run_federation(drop_masked_spec);
  const double recovery_overhead =
      drop_plain.rounds_per_sec / drop_masked.rounds_per_sec;
  std::printf("  1-drop unmasked: %7.1f rounds/s (%.3f s)\n",
              drop_plain.rounds_per_sec, drop_plain.wall_seconds);
  std::printf("  1-drop masked  : %7.1f rounds/s (%.3f s)  overhead %.2fx\n",
              drop_masked.rounds_per_sec, drop_masked.wall_seconds,
              recovery_overhead);

  // 3. DP sigma vs accuracy grid (threaded transport for speed). RMSE is
  //    against the sigma=0 run, which is pure clipping.
  const std::vector<double> sigmas = {0.0, 0.5, 1.0, 2.0};
  std::vector<RunResult> grid;
  std::printf("  dp grid (clip 8.0, delta 1e-5, vs sigma=0 reference):\n");
  for (const double sigma : sigmas) {
    RunSpec dp_spec;
    dp_spec.rounds = 10;
    dp_spec.use_tcp = false;
    dp_spec.dp_noise = sigma;
    grid.push_back(run_federation(dp_spec));
  }
  for (std::size_t i = 0; i < sigmas.size(); ++i) {
    const double err = rmse(grid[i].final_model, grid[0].final_model);
    if (std::isfinite(grid[i].epsilon)) {
      std::printf("    sigma %.1f: rmse %8.5f  epsilon %8.3f\n", sigmas[i],
                  err, grid[i].epsilon);
    } else {
      std::printf("    sigma %.1f: rmse %8.5f  epsilon inf\n", sigmas[i], err);
    }
  }

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"sites\": 8,\n"
                 "  \"rounds\": %lld,\n"
                 "  \"transport\": \"tcp\",\n"
                 "  \"unmasked_rounds_per_sec\": %.3f,\n"
                 "  \"masked_rounds_per_sec\": %.3f,\n"
                 "  \"masking_overhead_factor\": %.3f,\n"
                 "  \"drop_unmasked_rounds_per_sec\": %.3f,\n"
                 "  \"drop_masked_rounds_per_sec\": %.3f,\n"
                 "  \"recovery_overhead_factor\": %.3f,\n"
                 "  \"dp_grid\": [\n",
                 static_cast<long long>(rounds), plain.rounds_per_sec,
                 masked.rounds_per_sec, mask_overhead,
                 drop_plain.rounds_per_sec, drop_masked.rounds_per_sec,
                 recovery_overhead);
    for (std::size_t i = 0; i < sigmas.size(); ++i) {
      std::fprintf(f,
                   "    {\"noise_multiplier\": %.2f, \"rmse_vs_clip_only\": "
                   "%.6f, \"epsilon\": %.4f}%s\n",
                   sigmas[i], rmse(grid[i].final_model, grid[0].final_model),
                   json_eps(grid[i].epsilon),
                   i + 1 < sigmas.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}
