// Fig. 2 reproduction — BERT masked-LM pretraining loss under four schemes:
// centralized, small-dataset (the paper's lower bound: one 2% shard),
// FL over the imbalanced split, and FL over a balanced split.
//
// Paper shape: the loss starts high (~10.7 at their 30k-token vocabulary;
// ~ln(V) here) and converges to a similar low value (~3.5) for centralized
// and both FL schemes, while the small-dataset run plateaus above them
// (4.4) — decentralized data alone is not enough.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "train/experiment.h"
#include "train/reporting.h"

int main() {
  using namespace cppflare;
  using train::MlmScheme;

  const train::ExperimentScale scale = train::ExperimentScale::from_env();
  bench::print_header("Fig. 2 — MLM pretraining loss by scheme", scale);
  bench::quiet_logs();

  const MlmScheme schemes[] = {MlmScheme::kCentralized, MlmScheme::kSmallDataset,
                               MlmScheme::kFlImbalanced, MlmScheme::kFlBalanced};
  std::vector<std::vector<double>> series;
  for (MlmScheme scheme : schemes) {
    std::printf("running %s ...\n", train::mlm_scheme_name(scheme));
    std::fflush(stdout);
    series.push_back(train::run_mlm_scheme(scheme, scale));
  }

  std::printf("\nvalidation MLM loss per round/epoch:\n");
  std::printf("%-8s", "round");
  for (MlmScheme scheme : schemes) {
    std::printf(" | %-14s", train::mlm_scheme_name(scheme));
  }
  std::printf("\n");
  for (std::size_t r = 0; r < series[0].size(); ++r) {
    std::printf("%-8zu", r + 1);
    for (const auto& s : series) {
      if (r < s.size()) {
        std::printf(" | %-14.3f", s[r]);
      } else {
        std::printf(" | %-14s", "-");
      }
    }
    std::printf("\n");
  }

  const double centralized_final = series[0].back();
  const double small_final = series[1].back();
  const double fl_imb_final = series[2].back();
  const double fl_bal_final = series[3].back();
  std::printf(
      "\nshape checks (paper: centralized/balanced/imbalanced converge "
      "together at ~3.5; small-dataset plateaus at ~4.4):\n");
  std::printf("  small-dataset above centralized: %s (%.3f vs %.3f)\n",
              small_final > centralized_final ? "yes" : "NO", small_final,
              centralized_final);
  std::printf("  FL-imbalanced near centralized: %s (%.3f vs %.3f)\n",
              fl_imb_final < small_final ? "yes" : "NO", fl_imb_final,
              centralized_final);
  std::printf("  FL-balanced near centralized: %s (%.3f vs %.3f)\n",
              fl_bal_final < small_final ? "yes" : "NO", fl_bal_final,
              centralized_final);
  const std::string csv = "/tmp/cppflare_fig2_mlm_loss.csv";
  train::write_series_csv(
      csv, {"centralized", "small-dataset", "fl-imbalanced", "fl-balanced"}, series);
  std::printf("series written to %s\n", csv.c_str());
  std::printf("[fig2] done\n");
  return 0;
}
