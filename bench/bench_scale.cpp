// Coordinator scaling bench.
//
// Measures what the reactor transport + long-poll dispatch + multiplexed
// simulator buy at scale: rounds/s, peak file-descriptor count, and peak
// thread count for 8/64-site loopback-TCP federations (thread-per-site
// clients against the epoll reactor) and 64/256-site in-process multiplexed
// federations (all sites on 8 pool workers). Also re-measures the faulty-run
// overhead factor of the standard 8-site fault plan, whose pre-reactor
// baseline was 4.16x (BENCH_faults.json): long-poll dispatch removes the
// polling storms that amplified injected delays.
#include <dirent.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "flare/hierarchy.h"
#include "flare/simulator.h"

namespace {

using namespace cppflare;

nn::StateDict tiny_model() {
  nn::StateDict d;
  d.insert("w", {{16}, std::vector<float>(16, 0.0f)});
  return d;
}

class NudgeLearner : public flare::Learner {
 public:
  NudgeLearner(std::string site, float target)
      : site_(std::move(site)), target_(target) {}

  flare::Dxo train(const flare::Dxo& global, const flare::FLContext&) override {
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v += 0.5f * (target_ - v);
    }
    flare::Dxo update(flare::DxoKind::kWeights, updated);
    update.set_meta_int(flare::Dxo::kMetaNumSamples, 10);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float target_;
};

std::int64_t count_open_fds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  std::int64_t n = 0;
  while (readdir(dir) != nullptr) ++n;
  closedir(dir);
  return n - 2;  // "." and ".."
}

std::int64_t count_threads() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  std::int64_t threads = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "Threads:", 8) == 0) {
      threads = std::atoll(line + 8);
      break;
    }
  }
  std::fclose(f);
  return threads;
}

/// Samples /proc/self every few ms on a background thread and keeps the
/// maxima — the "peak fds / peak threads" columns of BENCH_scale.json.
class PeakSampler {
 public:
  PeakSampler() {
    thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        sample();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      sample();
    });
  }
  ~PeakSampler() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }
  std::int64_t peak_fds() const { return peak_fds_.load(); }
  std::int64_t peak_threads() const { return peak_threads_.load(); }

 private:
  void sample() {
    const std::int64_t fds = count_open_fds();
    const std::int64_t threads = count_threads();
    if (fds > peak_fds_.load()) peak_fds_.store(fds);
    if (threads > peak_threads_.load()) peak_threads_.store(threads);
  }

  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> peak_fds_{0};
  std::atomic<std::int64_t> peak_threads_{0};
  std::thread thread_;
};

struct ScaleResult {
  std::int64_t sites = 0;
  std::int64_t rounds = 0;
  std::int64_t site_workers = 0;
  bool tcp = false;
  double rounds_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::int64_t peak_fds = 0;
  std::int64_t peak_threads = 0;
};

ScaleResult run_scale(std::int64_t sites, std::int64_t rounds, bool tcp,
                      std::int64_t site_workers, bool faulty = false) {
  flare::SimulatorConfig config;
  config.num_clients = sites;
  config.num_rounds = rounds;
  config.use_tcp = tcp;
  config.site_workers = site_workers;
  config.compute_threads = -1;
  // Retry schedule proportionate to loopback RTTs (the default initial
  // delay is WAN-scaled). Applied to the clean and faulty runs alike so
  // the overhead factor isolates what the fault plan costs the stack,
  // not what a mis-scaled sleep costs the bench.
  config.client_retry = {1, 100, 2.0, 5, 0.2, /*fast_first_retry=*/true};
  std::unique_ptr<flare::Aggregator> aggregator;
  if (sites >= 256) {
    aggregator = std::make_unique<flare::HierarchicalFedAvgAggregator>(true, 16);
  } else {
    aggregator = std::make_unique<flare::FedAvgAggregator>(true);
  }
  flare::SimulatorRunner runner(
      config, tiny_model(), std::move(aggregator),
      [](std::int64_t i, const std::string& name) {
        return std::make_shared<NudgeLearner>(name, static_cast<float>(i % 7));
      });
  if (faulty) {
    runner.set_fault_planner(
        [](std::int64_t index, const std::string&,
           std::int64_t incarnation) -> std::optional<flare::FaultPlan> {
          flare::FaultPlan plan;
          plan.seed = 0xbe7c4 + static_cast<std::uint64_t>(index) * 131 +
                      static_cast<std::uint64_t>(incarnation);
          plan.drop_prob = 0.1;
          plan.delay_prob = 0.1;
          plan.delay_ms = 1;
          if (index == 3 && incarnation == 0) plan.disconnect_on_call = 9;
          return plan;
        });
  }
  PeakSampler sampler;
  const flare::SimulationResult result = runner.run();
  if (result.aborted ||
      result.history.size() != static_cast<std::size_t>(rounds)) {
    std::fprintf(stderr, "federation did not complete cleanly (%lld sites)\n",
                 static_cast<long long>(sites));
    std::exit(1);
  }
  ScaleResult r;
  r.sites = sites;
  r.rounds = rounds;
  r.site_workers = site_workers;
  r.tcp = tcp;
  r.wall_seconds = result.wall_seconds;
  r.rounds_per_sec = static_cast<double>(rounds) / result.wall_seconds;
  r.peak_fds = sampler.peak_fds();
  r.peak_threads = sampler.peak_threads();
  return r;
}

void print_result(const ScaleResult& r) {
  std::printf(
      "  %4lld sites %-7s workers=%-3lld : %8.1f rounds/s  (%.3f s)  "
      "peak_fds=%lld  peak_threads=%lld\n",
      static_cast<long long>(r.sites), r.tcp ? "tcp" : "inproc",
      static_cast<long long>(r.site_workers), r.rounds_per_sec, r.wall_seconds,
      static_cast<long long>(r.peak_fds),
      static_cast<long long>(r.peak_threads));
}

void append_json(std::string& out, const ScaleResult& r, bool last) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "    {\"sites\": %lld, \"rounds\": %lld, \"transport\": "
                "\"%s\", \"site_workers\": %lld, \"rounds_per_sec\": %.3f, "
                "\"wall_seconds\": %.3f, \"peak_fds\": %lld, "
                "\"peak_threads\": %lld}%s\n",
                static_cast<long long>(r.sites),
                static_cast<long long>(r.rounds), r.tcp ? "tcp" : "inproc",
                static_cast<long long>(r.site_workers), r.rounds_per_sec,
                r.wall_seconds, static_cast<long long>(r.peak_fds),
                static_cast<long long>(r.peak_threads), last ? "" : ",");
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  bench::quiet_logs();
  core::LogConfig::instance().set_threshold(core::LogLevel::kError);

  std::printf("Coordinator scaling: reactor transport + long-poll dispatch\n");
  std::vector<ScaleResult> results;
  // Thread-per-site clients over loopback TCP against the epoll reactor.
  results.push_back(run_scale(8, 30, /*tcp=*/true, /*site_workers=*/0));
  print_result(results.back());
  results.push_back(run_scale(64, 10, /*tcp=*/true, /*site_workers=*/0));
  print_result(results.back());
  // Multiplexed in-process mode: all sites on 8 pool workers.
  results.push_back(run_scale(64, 10, /*tcp=*/false, /*site_workers=*/8));
  print_result(results.back());
  results.push_back(run_scale(256, 5, /*tcp=*/false, /*site_workers=*/8));
  print_result(results.back());

  std::printf("\nFault overhead re-measurement (pre-reactor baseline 4.16x)\n");
  const ScaleResult clean = run_scale(8, 30, /*tcp=*/true, 0, /*faulty=*/false);
  const ScaleResult faulty = run_scale(8, 30, /*tcp=*/true, 0, /*faulty=*/true);
  const double overhead = clean.rounds_per_sec / faulty.rounds_per_sec;
  std::printf("  clean : %8.1f rounds/s\n", clean.rounds_per_sec);
  std::printf("  faulty: %8.1f rounds/s\n", faulty.rounds_per_sec);
  std::printf("  overhead factor: %.2fx (baseline 4.16x)\n", overhead);

  if (json_path != nullptr) {
    std::string json = "{\n  \"configs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      append_json(json, results[i], i + 1 == results.size());
    }
    json += "  ],\n";
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "  \"fault_overhead\": {\"sites\": 8, \"rounds\": 30, "
        "\"fault_plan\": {\"drop_prob\": 0.1, \"delay_prob\": 0.1, "
        "\"delay_ms\": 1, \"disconnects\": 1}, "
        "\"client_retry\": {\"initial_ms\": 1, \"max_ms\": 100, "
        "\"multiplier\": 2.0, \"max_retries\": 5, \"jitter\": 0.2, "
        "\"fast_first_retry\": true}, "
        "\"clean_rounds_per_sec\": %.3f, \"faulty_rounds_per_sec\": %.3f, "
        "\"overhead_factor\": %.3f, "
        "\"pre_reactor\": {\"clean_rounds_per_sec\": 118.622, "
        "\"faulty_rounds_per_sec\": 28.515, \"overhead_factor\": 4.160}}\n}\n",
        clean.rounds_per_sec, faulty.rounds_per_sec, overhead);
    json += buf;
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}
