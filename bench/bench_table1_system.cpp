// Table I reproduction — system parameters and federation overhead.
//
// Prints the paper's Table I alongside the values this reproduction uses,
// then measures what the table's hardware rows imply here: provisioning
// cost, the per-round protocol overhead of an 8-client federation with
// no-op learners (pure framework cost), and the in-proc vs TCP transport
// delta.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "flare/simulator.h"
#include "train/experiment.h"

namespace {

using namespace cppflare;

nn::StateDict dict_of_size(std::int64_t n) {
  nn::StateDict d;
  nn::ParamBlob blob;
  blob.shape = {n};
  blob.values.assign(static_cast<std::size_t>(n), 0.5f);
  d.insert("w", std::move(blob));
  return d;
}

class NoopLearner : public flare::Learner {
 public:
  NoopLearner(std::string site, nn::StateDict weights)
      : site_(std::move(site)), weights_(std::move(weights)) {}
  flare::Dxo train(const flare::Dxo&, const flare::FLContext&) override {
    flare::Dxo update(flare::DxoKind::kWeights, weights_);
    update.set_meta_int(flare::Dxo::kMetaNumSamples, 100);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  nn::StateDict weights_;
};

double run_noop_federation(std::int64_t clients, std::int64_t rounds,
                           std::int64_t model_params, bool use_tcp) {
  flare::SimulatorConfig config;
  config.num_clients = clients;
  config.num_rounds = rounds;
  config.use_tcp = use_tcp;
  flare::SimulatorRunner runner(
      config, dict_of_size(model_params),
      std::make_unique<flare::FedAvgAggregator>(true),
      [&](std::int64_t, const std::string& name) {
        return std::make_shared<NoopLearner>(name, dict_of_size(model_params));
      });
  return runner.run().wall_seconds;
}

}  // namespace

int main() {
  using namespace cppflare;
  const train::ExperimentScale scale = train::ExperimentScale::from_env();
  bench::print_header("Table I — parameters and federation overhead", scale);

  std::printf("%-34s | %-28s | %s\n", "Description", "Paper", "This reproduction");
  std::printf("%.34s-+-%.28s-+-%.30s\n",
              "----------------------------------------",
              "----------------------------------------",
              "----------------------------------------");
  std::printf("%-34s | %-28s | %lld\n", "Number of clients", "8",
              static_cast<long long>(scale.num_clients));
  std::printf("%-34s | %-28s | %s\n", "Hardware",
              "2x Xeon + 4x RTX 2080 Ti; AWS p3.8xlarge",
              "single CPU core (simulated)");
  std::printf("%-34s | %-28s | %s\n", "Software",
              "PyTorch, CUDA, NVFlare v2.2", "cppflare (this library)");
  std::printf("%-34s | %-28s | %lld\n", "# train data (pretraining)", "453377",
              static_cast<long long>(scale.pretrain_sequences));
  std::printf("%-34s | %-28s | %lld\n", "# valid data (pretraining)", "8683",
              static_cast<long long>(scale.pretrain_valid));
  std::printf("%-34s | %-28s | %lld\n", "# train data (classification)", "6927",
              static_cast<long long>(
                  scale.num_patients -
                  static_cast<std::int64_t>(scale.valid_fraction *
                                            static_cast<double>(scale.num_patients))));
  std::printf("%-34s | %-28s | %lld\n", "# valid data (classification)", "1732",
              static_cast<long long>(scale.valid_fraction *
                                     static_cast<double>(scale.num_patients)));
  std::printf("%-34s | %-28s | Adam, %g\n", "Optimizer / learning rate",
              "Adam, 1e-2", scale.lr);

  bench::quiet_logs();

  // Provisioning cost (token + secret derivation for 8 sites + server).
  const auto prov_start = std::chrono::steady_clock::now();
  const flare::Provisioner provisioner("simulator_server", 7);
  const auto registry = provisioner.provision_sites(scale.num_clients);
  const double prov_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                prov_start)
          .count();
  std::printf("\nprovisioning: %zu participants in %.3f ms\n", registry.size(),
              prov_ms);
  std::printf("  e.g. site-1 token: %s\n", registry.at("site-1").token.c_str());

  // Pure framework overhead: no-op learners, BERT-sized payload (~1.3M f32).
  constexpr std::int64_t kParams = 1300000;
  constexpr std::int64_t kRounds = 5;
  const double inproc =
      run_noop_federation(scale.num_clients, kRounds, kParams, false);
  std::printf(
      "\nfederation protocol overhead (no-op learners, %lld-param model, %lld "
      "rounds, %lld clients):\n",
      static_cast<long long>(kParams), static_cast<long long>(kRounds),
      static_cast<long long>(scale.num_clients));
  std::printf("  in-proc transport : %.3f s total, %.1f ms/round\n", inproc,
              1000.0 * inproc / kRounds);
  const double tcp = run_noop_federation(scale.num_clients, kRounds, kParams, true);
  std::printf("  TCP transport     : %.3f s total, %.1f ms/round\n", tcp,
              1000.0 * tcp / kRounds);
  std::printf("\n[table1] done\n");
  return 0;
}
