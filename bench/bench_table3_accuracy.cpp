// Table III reproduction — top-1 accuracy of the three models under
// centralized, federated, and standalone training.
//
// Paper values (%):
//   scheme/model   BERT   BERT-mini   LSTM
//   centralized    80.1   72.7        87.9
//   standalone     72.2   68.5        67.3
//   FL             80.1   72.3        87.5
//
// We do not target the absolute numbers (synthetic cohort, scaled-down
// training on one CPU core) but the *shape*: FL ~= centralized >>
// standalone for every model, and LSTM > BERT > BERT-mini.
//
// Scale knobs: REPRO_NUM_PATIENTS, REPRO_FL_ROUNDS, REPRO_EPOCHS_CENTRALIZED,
// REPRO_MODELS (comma list, default "lstm,bert-mini,bert"), etc.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "train/experiment.h"

int main() {
  using namespace cppflare;
  using train::SchemeResult;

  const train::ExperimentScale scale = train::ExperimentScale::from_env();
  bench::print_header("Table III — top-1 accuracy across training schemes", scale);
  bench::quiet_logs();

  std::vector<std::string> model_names;
  {
    const char* env = std::getenv("REPRO_MODELS");
    std::stringstream ss(env != nullptr ? env : "lstm,bert-mini,bert");
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) model_names.push_back(item);
    }
  }

  const train::ClassificationData data = train::prepare_classification_data(scale);
  std::printf("cohort: %lld train / %lld valid, positive rate %.1f%%\n",
              static_cast<long long>(data.train.size()),
              static_cast<long long>(data.valid.size()),
              100.0 * data.train.positive_rate());
  std::printf("shards (imbalanced %s label skew alpha=%.2f):", "0.29..0.02,",
              scale.label_skew_alpha);
  for (const auto& shard : data.shards) {
    std::printf(" %lld(%.0f%%+)", static_cast<long long>(shard.size()),
                100.0 * shard.positive_rate());
  }
  std::printf("\n\n");

  const std::map<std::string, std::map<std::string, double>> paper = {
      {"bert", {{"centralized", 80.1}, {"standalone", 72.2}, {"fl", 80.1}}},
      {"bert-mini", {{"centralized", 72.7}, {"standalone", 68.5}, {"fl", 72.3}}},
      {"lstm", {{"centralized", 87.9}, {"standalone", 67.3}, {"fl", 87.5}}},
  };

  std::map<std::string, std::map<std::string, SchemeResult>> results;
  for (const std::string& model : model_names) {
    std::printf("--- %s ---\n", model.c_str());
    // The 12-layer BERT is ~20x the LSTM's cost per sample on one core and
    // flat-lines at the majority rate from epoch 1 (as in the paper, where
    // it lands at the cohort's majority rate); give it a reduced budget so
    // the default suite stays tractable. REPRO_BERT_FULL=1 disables this.
    train::ExperimentScale model_scale = scale;
    if (model == "bert" && std::getenv("REPRO_BERT_FULL") == nullptr) {
      model_scale.epochs_centralized = std::min<std::int64_t>(2, scale.epochs_centralized);
      model_scale.epochs_standalone = std::min<std::int64_t>(2, scale.epochs_standalone);
      model_scale.fl_rounds = std::min<std::int64_t>(3, scale.fl_rounds);
      std::printf("  (reduced budget: %lld/%lld epochs, %lld rounds)\n",
                  static_cast<long long>(model_scale.epochs_centralized),
                  static_cast<long long>(model_scale.epochs_standalone),
                  static_cast<long long>(model_scale.fl_rounds));
    }
    SchemeResult c = train::run_centralized(model, data, model_scale);
    std::printf("  centralized: acc=%.1f%%  (%.0f s)\n", 100.0 * c.accuracy,
                c.seconds);
    SchemeResult s = train::run_standalone(model, data, model_scale);
    std::printf("  standalone : acc=%.1f%%  (%.0f s, mean over %zu sites)\n",
                100.0 * s.accuracy, s.seconds, data.shards.size());
    train::FederatedOptions fopts;
    fopts.select_best = true;  // the paper's "optimal global models"
    SchemeResult f = train::run_federated(model, data, model_scale, fopts);
    std::printf("  federated  : acc=%.1f%%  (%.0f s, %lld rounds)\n",
                100.0 * f.accuracy, f.seconds,
                static_cast<long long>(scale.fl_rounds));
    results[model] = {{"centralized", c}, {"standalone", s}, {"fl", f}};
  }

  std::printf("\nTable III analog — top-1 accuracy %% (measured | paper):\n");
  std::printf("%-13s", "scheme/model");
  for (const auto& m : model_names) std::printf(" | %-15s", m.c_str());
  std::printf("\n");
  for (const char* scheme : {"centralized", "standalone", "fl"}) {
    std::printf("%-13s", scheme);
    for (const auto& m : model_names) {
      const double measured = 100.0 * results[m][scheme].accuracy;
      const double ref = paper.count(m) ? paper.at(m).at(scheme) : 0.0;
      std::printf(" | %5.1f  (%5.1f) ", measured, ref);
    }
    std::printf("\n");
  }

  // Shape checks the paper's conclusions rest on.
  std::printf("\nshape checks:\n");
  for (const auto& m : model_names) {
    const double c = results[m]["centralized"].accuracy;
    const double s = results[m]["standalone"].accuracy;
    const double f = results[m]["fl"].accuracy;
    std::printf("  %-10s FL within 5pp of centralized: %s ; FL > standalone: %s\n",
                m.c_str(), std::fabs(f - c) < 0.05 ? "yes" : "NO",
                f > s ? "yes" : "NO");
  }
  std::printf("[table3] done\n");
  return 0;
}
