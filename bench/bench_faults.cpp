// Fault-tolerance overhead bench.
//
// Runs the same 8-site loopback-TCP federation twice — once clean, once
// under the "standard" fault plan (10% drops, 10% delays, one mid-run
// disconnect) — and reports rounds/s for each plus the overhead factor.
// The learner is a trivial nudge step so the numbers isolate the runtime's
// retry/reconnect/quorum machinery, not training compute.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "flare/simulator.h"

namespace {

using namespace cppflare;

nn::StateDict tiny_model() {
  nn::StateDict d;
  d.insert("w", {{16}, std::vector<float>(16, 0.0f)});
  return d;
}

class NudgeLearner : public flare::Learner {
 public:
  NudgeLearner(std::string site, float target)
      : site_(std::move(site)), target_(target) {}

  flare::Dxo train(const flare::Dxo& global, const flare::FLContext&) override {
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v += 0.5f * (target_ - v);
    }
    flare::Dxo update(flare::DxoKind::kWeights, updated);
    update.set_meta_int(flare::Dxo::kMetaNumSamples, 10);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float target_;
};

struct RunResult {
  double rounds_per_sec = 0.0;
  double wall_seconds = 0.0;
};

RunResult run_federation(std::int64_t rounds, bool faulty) {
  flare::SimulatorConfig config;
  config.num_clients = 8;
  config.num_rounds = rounds;
  config.use_tcp = true;
  config.compute_threads = -1;
  flare::SimulatorRunner runner(
      config, tiny_model(), std::make_unique<flare::FedAvgAggregator>(true),
      [](std::int64_t i, const std::string& name) {
        return std::make_shared<NudgeLearner>(name, static_cast<float>(i));
      });
  if (faulty) {
    runner.set_fault_planner(
        [](std::int64_t index, const std::string&,
           std::int64_t incarnation) -> std::optional<flare::FaultPlan> {
          flare::FaultPlan plan;
          plan.seed = 0xbe7c4 + static_cast<std::uint64_t>(index) * 131 +
                      static_cast<std::uint64_t>(incarnation);
          plan.drop_prob = 0.1;
          plan.delay_prob = 0.1;
          plan.delay_ms = 1;
          if (index == 3 && incarnation == 0) plan.disconnect_on_call = 9;
          return plan;
        });
  }
  const flare::SimulationResult result = runner.run();
  if (result.aborted || result.history.size() != static_cast<std::size_t>(rounds)) {
    std::fprintf(stderr, "federation did not complete cleanly\n");
    std::exit(1);
  }
  RunResult r;
  r.wall_seconds = result.wall_seconds;
  r.rounds_per_sec = static_cast<double>(rounds) / result.wall_seconds;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  bench::quiet_logs();
  // Injected faults log one warning per retry by design; that's thousands of
  // lines at bench scale, so keep only errors.
  core::LogConfig::instance().set_threshold(core::LogLevel::kError);

  const std::int64_t rounds = 30;
  std::printf("Fault-tolerance overhead: 8-site TCP federation, %lld rounds\n",
              static_cast<long long>(rounds));

  const RunResult clean = run_federation(rounds, /*faulty=*/false);
  std::printf("  clean : %7.1f rounds/s (%.3f s)\n", clean.rounds_per_sec,
              clean.wall_seconds);
  const RunResult faulty = run_federation(rounds, /*faulty=*/true);
  std::printf("  faulty: %7.1f rounds/s (%.3f s)  [10%% drop, 10%% delay, "
              "1 disconnect]\n",
              faulty.rounds_per_sec, faulty.wall_seconds);
  const double overhead = clean.rounds_per_sec / faulty.rounds_per_sec;
  std::printf("  overhead factor: %.2fx\n", overhead);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"sites\": 8,\n"
                 "  \"rounds\": %lld,\n"
                 "  \"transport\": \"tcp\",\n"
                 "  \"fault_plan\": {\"drop_prob\": 0.1, \"delay_prob\": 0.1, "
                 "\"delay_ms\": 1, \"disconnects\": 1},\n"
                 "  \"clean_rounds_per_sec\": %.3f,\n"
                 "  \"faulty_rounds_per_sec\": %.3f,\n"
                 "  \"overhead_factor\": %.3f\n"
                 "}\n",
                 static_cast<long long>(rounds), clean.rounds_per_sec,
                 faulty.rounds_per_sec, overhead);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}
