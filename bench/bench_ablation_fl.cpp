// Ablations for the design choices DESIGN.md calls out:
//  1. weighted vs uniform FedAvg on the paper's imbalanced split,
//  2. differential-privacy noise sigma sweep vs accuracy,
//  3. client-count sweep at fixed total data,
//  4. dataset-size sweep, LSTM vs BERT-mini — the paper's stated future
//     work ("investigating the impact of different tasks and dataset sizes
//     on the performance of LSTM and BERT").
// Training runs use the LSTM (the paper's strongest model) at a reduced
// scale unless stated otherwise.
#include <cstdio>

#include "bench_common.h"
#include "train/experiment.h"

int main() {
  using namespace cppflare;

  train::ExperimentScale scale = train::ExperimentScale::from_env();
  // Ablations run many federations; keep each small.
  scale.num_patients = std::min<std::int64_t>(scale.num_patients, 600);
  scale.fl_rounds = std::min<std::int64_t>(scale.fl_rounds, 4);
  scale.epochs_centralized = std::min<std::int64_t>(scale.epochs_centralized, 3);
  bench::print_header("Ablations — aggregation, privacy noise, client count",
                      scale);
  bench::quiet_logs();

  // 1. Weighted vs uniform aggregation on the imbalanced + skewed split.
  {
    const train::ClassificationData data = train::prepare_classification_data(scale);
    train::FederatedOptions weighted;
    weighted.weighted_aggregation = true;
    train::FederatedOptions uniform;
    uniform.weighted_aggregation = false;
    const auto rw = train::run_federated("lstm", data, scale, weighted);
    const auto ru = train::run_federated("lstm", data, scale, uniform);
    train::FederatedOptions prox;
    prox.fedprox_mu = 0.01;
    const auto rp = train::run_federated("lstm", data, scale, prox);
    train::FederatedOptions secure;
    secure.secure_masking = true;
    const auto rs = train::run_federated("lstm", data, scale, secure);
    train::FederatedOptions best;
    best.select_best = true;
    const auto rb = train::run_federated("lstm", data, scale, best);
    std::printf("aggregation ablation (imbalanced sizes 0.29..0.02):\n");
    std::printf("  weighted FedAvg          : acc=%.1f%%\n", 100.0 * rw.accuracy);
    std::printf("  uniform FedAvg           : acc=%.1f%%\n", 100.0 * ru.accuracy);
    std::printf("  FedProx (mu=0.01)        : acc=%.1f%%\n", 100.0 * rp.accuracy);
    std::printf("  secure-agg masking       : acc=%.1f%%\n", 100.0 * rs.accuracy);
    std::printf("  best-round selection     : acc=%.1f%%\n", 100.0 * rb.accuracy);
    const auto rg = train::run_federated("gru", data, scale, weighted);
    std::printf("  GRU model (weighted)     : acc=%.1f%%\n", 100.0 * rg.accuracy);
    std::printf(
        "  (note: at this reduced scale round-to-round FedAvg variance is\n"
        "   large; best-round selection shows the achievable accuracy.\n"
        "   masking matches the uniform run up to float noise.)\n\n");

    // 2. DP noise sweep on the same data.
    std::printf("privacy-filter ablation (Gaussian sigma on client updates):\n");
    for (double sigma : {0.0, 0.001, 0.01, 0.1}) {
      train::FederatedOptions opts;
      opts.dp_sigma = sigma;
      const auto r = train::run_federated("lstm", data, scale, opts);
      std::printf("  sigma=%-6g acc=%.1f%%\n", sigma, 100.0 * r.accuracy);
    }
    std::printf("  (larger sigma -> stronger privacy, lower utility; small-scale\n"
                "   runs are noisy)\n\n");
  }

  // 3. Client-count sweep at fixed total data (balanced shards).
  std::printf("client-count sweep (fixed cohort, balanced shards):\n");
  for (std::int64_t clients : {2, 4, 8, 16}) {
    train::ExperimentScale s = scale;
    s.num_clients = clients;
    const train::ClassificationData data = train::prepare_classification_data(s);
    const auto r = train::run_federated("lstm", data, s);
    std::printf("  clients=%-3lld acc=%.1f%%  (%.0f s)\n",
                static_cast<long long>(clients), 100.0 * r.accuracy, r.seconds);
  }
  // 4. Dataset-size sweep (paper future work): recursive vs attentive model
  //    as the cohort grows. The paper conjectures LSTM's small-data edge
  //    shrinks with more data.
  std::printf("\ndataset-size sweep (centralized, LSTM vs BERT-mini):\n");
  for (std::int64_t patients : {200, 400, 800}) {
    train::ExperimentScale s = scale;
    s.num_patients = patients;
    const train::ClassificationData data = train::prepare_classification_data(s);
    const auto lstm = train::run_centralized("lstm", data, s);
    const auto mini = train::run_centralized("bert-mini", data, s);
    std::printf("  patients=%-5lld lstm=%.1f%%  bert-mini=%.1f%%  gap=%+.1fpp\n",
                static_cast<long long>(patients), 100.0 * lstm.accuracy,
                100.0 * mini.accuracy,
                100.0 * (lstm.accuracy - mini.accuracy));
  }
  std::printf("[ablation] done\n");
  return 0;
}
