// Multi-job coordinator bench (DESIGN.md §16).
//
// Part 1 answers the scheduling question: does hosting N federated jobs in
// one JobRunner actually buy aggregate throughput, or does the shared
// registry serialize them? It runs the same 8-site in-process federation as
// 1 solo job and as 4 concurrent jobs and reports aggregate rounds/s for
// both plus the scaling factor.
//
// Part 2 times the admin console: mean latency of `status` and `metrics`
// calls through the sealed line protocol against a coordinator that just
// hosted 4 jobs — the number an operator's dashboard poll loop cares about.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/parallel.h"
#include "flare/client.h"
#include "flare/jobs.h"
#include "flare/provision.h"

namespace {

using namespace cppflare;

constexpr std::int64_t kSites = 8;
constexpr std::int64_t kRounds = 40;
constexpr int kReps = 3;  // best-of, to shed scheduler noise
constexpr std::int64_t kModelFloats = 4096;
constexpr int kAdminCalls = 1000;

nn::StateDict bench_model() {
  nn::StateDict d;
  d.insert("w", {{kModelFloats}, std::vector<float>(kModelFloats, 0.0f)});
  return d;
}

class NudgeLearner : public flare::Learner {
 public:
  NudgeLearner(std::string site, float target)
      : site_(std::move(site)), target_(target) {}

  flare::Dxo train(const flare::Dxo& global, const flare::FLContext&) override {
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v += 0.5f * (target_ - v);
    }
    flare::Dxo update(flare::DxoKind::kWeights, updated);
    update.set_meta_int(flare::Dxo::kMetaNumSamples, 10);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float target_;
};

std::map<std::string, flare::Credential> make_pool() {
  const flare::Provisioner provisioner("bench-jobs-pool", 33);
  std::map<std::string, flare::Credential> pool =
      provisioner.provision_sites(kSites);
  pool.insert({"admin", provisioner.provision("admin")});
  return pool;
}

flare::JobSpec make_spec(const std::string& job_id) {
  flare::JobSpec spec;
  spec.server.job_id = job_id;
  spec.server.num_rounds = kRounds;
  spec.server.expected_clients = kSites;
  spec.server.min_clients = kSites;
  spec.initial_model = bench_model();
  spec.aggregator = std::make_unique<flare::FedAvgAggregator>(true);
  return spec;
}

void drive_job(flare::JobRunner& runner,
               const std::map<std::string, flare::Credential>& pool,
               const std::string& job_id, std::int64_t job_index) {
  std::vector<std::thread> threads;
  for (std::int64_t i = 0; i < kSites; ++i) {
    const std::string name = "site-" + std::to_string(i + 1);
    threads.emplace_back([&runner, &pool, job_id, job_index, i, name] {
      flare::ClientConfig config;
      config.job_id = job_id;
      config.max_idle_ms = 60000;
      flare::FederatedClient client(
          config, pool.at(name),
          std::make_unique<flare::AsyncInProcConnection>(
              runner.async_router()),
          std::make_shared<NudgeLearner>(
              name, static_cast<float>(i + 10 * job_index)));
      client.run();
    });
  }
  for (std::thread& t : threads) t.join();
}

/// Runs `num_jobs` concurrent jobs to completion; returns aggregate
/// rounds/s (jobs x rounds over total wall time).
double run_jobs(const std::map<std::string, flare::Credential>& pool,
                int num_jobs) {
  flare::JobRunner runner(pool);
  const auto started = std::chrono::steady_clock::now();
  for (int j = 0; j < num_jobs; ++j) {
    runner.submit(make_spec("job-" + std::to_string(j)));
  }
  std::vector<std::thread> drivers;
  for (int j = 0; j < num_jobs; ++j) {
    drivers.emplace_back([&runner, &pool, j] {
      drive_job(runner, pool, "job-" + std::to_string(j), j);
    });
  }
  for (std::thread& t : drivers) t.join();
  if (!runner.wait_all(120000)) {
    std::fprintf(stderr, "jobs did not complete\n");
    std::exit(1);
  }
  const auto elapsed = std::chrono::steady_clock::now() - started;
  const double seconds = std::chrono::duration<double>(elapsed).count();
  return static_cast<double>(num_jobs) * static_cast<double>(kRounds) /
         seconds;
}

/// Mean latency of one admin command through the full sealed transport.
/// One AdminClient serves all commands: the coordinator tracks the admin
/// identity's sequence window, so a fresh client would read as a replay.
double admin_mean_us(flare::AdminClient& admin, const std::string& command) {
  const auto started = std::chrono::steady_clock::now();
  for (int i = 0; i < kAdminCalls; ++i) {
    const std::string reply = admin.call(command);
    if (reply.rfind("ok", 0) != 0) {
      std::fprintf(stderr, "admin call failed: %s\n", reply.c_str());
      std::exit(1);
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - started;
  return std::chrono::duration<double, std::micro>(elapsed).count() /
         static_cast<double>(kAdminCalls);
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  bench::quiet_logs();

  // This bench measures concurrent hosting, not admission queueing: on a
  // small machine the default budget would serialize the 4 jobs (and their
  // clients would exhaust retries waiting), so grant at least 4 slots.
  core::set_compute_threads(std::max<std::size_t>(core::compute_threads(), 4));

  const auto pool = make_pool();

  std::printf("Multi-job coordinator: %lld sites, %lld rounds/job"
              " (%lld-float model)\n",
              static_cast<long long>(kSites), static_cast<long long>(kRounds),
              static_cast<long long>(kModelFloats));

  // Interleave the 1-job and 4-job measurements so machine noise hits both.
  double best_single = 0.0;
  double best_concurrent = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    best_single = std::max(best_single, run_jobs(pool, 1));
    best_concurrent = std::max(best_concurrent, run_jobs(pool, 4));
  }
  std::printf("  1 job            : %7.1f rounds/s aggregate\n", best_single);
  std::printf("  4 jobs concurrent: %7.1f rounds/s aggregate  (%.2fx)\n",
              best_concurrent, best_concurrent / best_single);

  // Admin latency against a coordinator that hosted 4 jobs to completion.
  flare::JobRunner runner(pool);
  for (int j = 0; j < 4; ++j) {
    runner.submit(make_spec("job-" + std::to_string(j)));
  }
  std::vector<std::thread> drivers;
  for (int j = 0; j < 4; ++j) {
    drivers.emplace_back([&runner, &pool, j] {
      drive_job(runner, pool, "job-" + std::to_string(j), j);
    });
  }
  for (std::thread& t : drivers) t.join();
  flare::AdminClient admin(
      std::make_unique<flare::AsyncInProcConnection>(runner.async_router()),
      pool.at("admin"));
  const double status_us = admin_mean_us(admin, "status job-0");
  const double metrics_us = admin_mean_us(admin, "metrics job-0");
  const double list_us = admin_mean_us(admin, "list");
  std::printf("  admin status     : %7.1f us/call (mean of %d)\n", status_us,
              kAdminCalls);
  std::printf("  admin metrics    : %7.1f us/call\n", metrics_us);
  std::printf("  admin list       : %7.1f us/call\n", list_us);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"sites\": %lld,\n"
                 "  \"rounds_per_job\": %lld,\n"
                 "  \"model_floats\": %lld,\n"
                 "  \"transport\": \"in-proc\",\n"
                 "  \"single_job_rounds_per_sec\": %.3f,\n"
                 "  \"four_jobs_aggregate_rounds_per_sec\": %.3f,\n"
                 "  \"four_job_scaling_factor\": %.3f,\n"
                 "  \"admin\": {\"calls\": %d, \"status_mean_us\": %.3f, "
                 "\"metrics_mean_us\": %.3f, \"list_mean_us\": %.3f}\n"
                 "}\n",
                 static_cast<long long>(kSites),
                 static_cast<long long>(kRounds),
                 static_cast<long long>(kModelFloats), best_single,
                 best_concurrent, best_concurrent / best_single, kAdminCalls,
                 status_us, metrics_us, list_us);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
