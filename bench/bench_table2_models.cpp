// Table II reproduction — the three medical NLP models.
//
// Instantiates each model with the paper's exact architecture parameters
// (BERT 128/6/12, BERT-mini 50/2/6, LSTM 128/-/3), reports parameter
// counts, and measures single-core forward and forward+backward latency on
// a representative batch.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "models/lstm_classifier.h"
#include "tensor/ops.h"
#include "train/experiment.h"

namespace {

using namespace cppflare;

data::Batch make_batch(std::int64_t batch, std::int64_t seq, std::int64_t vocab,
                       core::Rng& rng) {
  data::Batch b;
  b.batch_size = batch;
  b.seq_len = seq;
  for (std::int64_t i = 0; i < batch; ++i) {
    b.ids.push_back(data::Vocabulary::kCls);
    for (std::int64_t t = 1; t < seq; ++t) {
      b.ids.push_back(rng.uniform_int(data::Vocabulary::kNumSpecial, vocab - 1));
    }
    b.lengths.push_back(seq);
    b.labels.push_back(i % 2);
  }
  return b;
}

struct Timing {
  double fwd_ms;
  double fwd_bwd_ms;
};

Timing time_model(models::SequenceClassifier& model, const data::Batch& batch,
                  int iters) {
  core::Rng rng(7);
  model.set_training(false);
  // Warmup + forward timing under no-grad.
  {
    tensor::NoGradGuard guard;
    (void)model.class_logits(batch, rng);
  }
  const auto t0 = std::chrono::steady_clock::now();
  {
    tensor::NoGradGuard guard;
    for (int i = 0; i < iters; ++i) (void)model.class_logits(batch, rng);
  }
  const double fwd =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count() /
      iters;

  model.set_training(true);
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    tensor::Tensor loss =
        tensor::cross_entropy(model.class_logits(batch, rng), batch.labels);
    model.zero_grad();
    loss.backward();
  }
  const double fwd_bwd =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t1)
          .count() /
      iters;
  return {fwd, fwd_bwd};
}

}  // namespace

int main() {
  using namespace cppflare;
  const train::ExperimentScale scale = train::ExperimentScale::from_env();
  bench::print_header("Table II — medical NLP model specifications", scale);
  bench::quiet_logs();

  const std::int64_t vocab =
      scale.num_drugs + scale.num_diagnoses + scale.num_procedures + 2 +
      data::Vocabulary::kNumSpecial;
  const std::int64_t seq = scale.max_seq_len;
  core::Rng data_rng(1);
  const data::Batch batch = make_batch(8, seq, vocab, data_rng);

  std::printf("%-12s | %6s | %5s | %6s | %10s | %10s | %12s\n", "Model", "hidden",
              "heads", "layers", "params", "fwd ms/b8", "fwd+bwd ms");
  std::printf("-------------+--------+-------+--------+------------+------------+-------------\n");

  for (const char* name : {"bert", "bert-mini", "lstm", "gru"}) {
    const models::ModelConfig config = models::ModelConfig::by_name(name, vocab, seq);
    core::Rng rng(42);
    auto model = models::make_classifier(config, rng);
    const int iters = config.kind == models::ModelKind::kBert ? 2 : 4;
    const Timing t = time_model(*model, batch, iters);
    std::printf("%-12s | %6lld | %5lld | %6lld | %10lld | %10.1f | %12.1f\n", name,
                static_cast<long long>(config.hidden),
                static_cast<long long>(config.heads),
                static_cast<long long>(config.layers),
                static_cast<long long>(model->num_parameters()), t.fwd_ms,
                t.fwd_bwd_ms);
  }
  std::printf(
      "\npaper Table II: BERT 128/6/12, BERT-mini 50/2/6, LSTM 128/-/3 "
      "(head_dim decoupled, x-transformers style);\n"
      "gru is this reproduction's extra recursive baseline (paper future work)\n");
  std::printf("[table2] done\n");
  return 0;
}
