// Table II reproduction — the three medical NLP models.
//
// Instantiates each model with the paper's exact architecture parameters
// (BERT 128/6/12, BERT-mini 50/2/6, LSTM 128/-/3), reports parameter
// counts, and measures single-core forward and forward+backward latency on
// a representative batch.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/parallel.h"
#include "models/lstm_classifier.h"
#include "tensor/ops.h"
#include "train/experiment.h"

namespace {

using namespace cppflare;

data::Batch make_batch(std::int64_t batch, std::int64_t seq, std::int64_t vocab,
                       core::Rng& rng) {
  data::Batch b;
  b.batch_size = batch;
  b.seq_len = seq;
  for (std::int64_t i = 0; i < batch; ++i) {
    b.ids.push_back(data::Vocabulary::kCls);
    for (std::int64_t t = 1; t < seq; ++t) {
      b.ids.push_back(rng.uniform_int(data::Vocabulary::kNumSpecial, vocab - 1));
    }
    b.lengths.push_back(seq);
    b.labels.push_back(i % 2);
  }
  return b;
}

struct Timing {
  double fwd_ms;
  double fwd_bwd_ms;
};

Timing time_model(models::SequenceClassifier& model, const data::Batch& batch,
                  int iters) {
  core::Rng rng(7);
  model.set_training(false);
  // Warmup + forward timing under no-grad.
  {
    tensor::NoGradGuard guard;
    (void)model.class_logits(batch, rng);
  }
  const auto t0 = std::chrono::steady_clock::now();
  {
    tensor::NoGradGuard guard;
    for (int i = 0; i < iters; ++i) (void)model.class_logits(batch, rng);
  }
  const double fwd =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count() /
      iters;

  model.set_training(true);
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    tensor::Tensor loss =
        tensor::cross_entropy(model.class_logits(batch, rng), batch.labels);
    model.zero_grad();
    loss.backward();
  }
  const double fwd_bwd =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t1)
          .count() /
      iters;
  return {fwd, fwd_bwd};
}

struct Row {
  std::string name;
  std::int64_t params;
  Timing timing;
};

/// Writes BENCH_models.json: per-model latencies plus the run conditions
/// (thread budget, wall time) `scripts/bench.sh` records alongside the
/// tensor microbenchmarks.
void write_json(const char* path, const std::vector<Row>& rows,
                double wall_seconds) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"compute_threads\": %zu,\n  \"wall_seconds\": %.3f,\n",
               core::compute_threads(), wall_seconds);
  std::fprintf(f, "  \"models\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"params\": %lld, \"fwd_ms\": %.3f, "
                 "\"fwd_bwd_ms\": %.3f}%s\n",
                 rows[i].name.c_str(), static_cast<long long>(rows[i].params),
                 rows[i].timing.fwd_ms, rows[i].timing.fwd_bwd_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cppflare;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  const train::ExperimentScale scale = train::ExperimentScale::from_env();
  bench::print_header("Table II — medical NLP model specifications", scale);
  bench::quiet_logs();
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<Row> rows;

  const std::int64_t vocab =
      scale.num_drugs + scale.num_diagnoses + scale.num_procedures + 2 +
      data::Vocabulary::kNumSpecial;
  const std::int64_t seq = scale.max_seq_len;
  core::Rng data_rng(1);
  const data::Batch batch = make_batch(8, seq, vocab, data_rng);

  std::printf("%-12s | %6s | %5s | %6s | %10s | %10s | %12s\n", "Model", "hidden",
              "heads", "layers", "params", "fwd ms/b8", "fwd+bwd ms");
  std::printf("-------------+--------+-------+--------+------------+------------+-------------\n");

  for (const char* name : {"bert", "bert-mini", "lstm", "gru"}) {
    const models::ModelConfig config = models::ModelConfig::by_name(name, vocab, seq);
    core::Rng rng(42);
    auto model = models::make_classifier(config, rng);
    const int iters = config.kind == models::ModelKind::kBert ? 2 : 4;
    const Timing t = time_model(*model, batch, iters);
    rows.push_back({name, model->num_parameters(), t});
    std::printf("%-12s | %6lld | %5lld | %6lld | %10lld | %10.1f | %12.1f\n", name,
                static_cast<long long>(config.hidden),
                static_cast<long long>(config.heads),
                static_cast<long long>(config.layers),
                static_cast<long long>(model->num_parameters()), t.fwd_ms,
                t.fwd_bwd_ms);
  }
  if (json_path != nullptr) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    write_json(json_path, rows, wall);
    std::printf("\nwrote %s\n", json_path);
  }
  std::printf(
      "\npaper Table II: BERT 128/6/12, BERT-mini 50/2/6, LSTM 128/-/3 "
      "(head_dim decoupled, x-transformers style);\n"
      "gru is this reproduction's extra recursive baseline (paper future work)\n");
  std::printf("[table2] done\n");
  return 0;
}
