// Durability overhead + crash-recovery latency bench (DESIGN.md §15).
//
// Part 1 runs the same 8-site in-process federation three times — journal
// off, journal with one fsync per round, journal with an fsync on every
// record — and reports rounds/s for each plus the overhead factors. The
// fsync-per-round policy is the recommended default and carries a 1.10x
// budget against the journal-off baseline.
//
// Part 2 fabricates the on-disk aftermath of a coordinator killed mid-round
// (a checkpoint plus a journal holding a round-open and eight accepted
// contributions) and times how long a restarted server takes to replay it —
// the recovery-latency figure a paging SRE actually cares about.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_common.h"
#include "core/wal.h"
#include "flare/aggregator.h"
#include "flare/journal.h"
#include "flare/persistor.h"
#include "flare/provision.h"
#include "flare/server.h"
#include "flare/simulator.h"

namespace {

using namespace cppflare;

constexpr std::int64_t kSites = 8;
constexpr std::int64_t kRounds = 100;
constexpr int kReps = 5;  // best-of, to shed scheduler noise
constexpr std::int64_t kModelFloats = 4096;

nn::StateDict bench_model() {
  nn::StateDict d;
  d.insert("w", {{kModelFloats}, std::vector<float>(kModelFloats, 0.0f)});
  return d;
}

class NudgeLearner : public flare::Learner {
 public:
  NudgeLearner(std::string site, float target)
      : site_(std::move(site)), target_(target) {}

  flare::Dxo train(const flare::Dxo& global, const flare::FLContext&) override {
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v += 0.5f * (target_ - v);
    }
    flare::Dxo update(flare::DxoKind::kWeights, updated);
    update.set_meta_int(flare::Dxo::kMetaNumSamples, 10);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float target_;
};

enum class Mode { kJournalOff, kFsyncPerRound, kFsyncPerRecord };

double run_federation(const std::filesystem::path& dir, Mode mode) {
  flare::SimulatorConfig config;
  config.job_id = "bench-crash";
  config.num_clients = kSites;
  config.num_rounds = kRounds;
  config.use_tcp = false;
  config.compute_threads = -1;
  // Mode-specific filenames so one mode's leftovers never shadow another's.
  config.persist_path =
      (dir / ("model_" + std::to_string(static_cast<int>(mode)) + ".bin"))
          .string();
  config.journal = mode != Mode::kJournalOff;
  config.journal_sync = mode == Mode::kFsyncPerRecord
                            ? core::WalSyncPolicy::kEveryRecord
                            : core::WalSyncPolicy::kEveryRound;
  flare::SimulatorRunner runner(
      config, bench_model(), std::make_unique<flare::FedAvgAggregator>(true),
      [](std::int64_t i, const std::string& name) {
        return std::make_shared<NudgeLearner>(name, static_cast<float>(i));
      });
  const flare::SimulationResult result = runner.run();
  if (result.aborted ||
      result.history.size() != static_cast<std::size_t>(kRounds)) {
    std::fprintf(stderr, "federation did not complete cleanly\n");
    std::exit(1);
  }
  return static_cast<double>(kRounds) / result.wall_seconds;
}

/// Measures every mode kReps times, interleaved (off, per-round, per-record,
/// off, ...), so slow-machine phases — noisy neighbours, thermal dips — hit
/// all three modes instead of biasing whichever ran during them. Best-of per
/// mode then discards the noise floor.
std::array<double, 3> measure_interleaved(const std::filesystem::path& dir) {
  std::array<double, 3> best{};
  for (int rep = 0; rep < kReps; ++rep) {
    for (const Mode mode :
         {Mode::kJournalOff, Mode::kFsyncPerRound, Mode::kFsyncPerRecord}) {
      const std::size_t slot = static_cast<std::size_t>(mode);
      best[slot] = std::max(best[slot], run_federation(dir, mode));
    }
  }
  return best;
}

/// Fabricates the mid-round kill aftermath, then times a cold server boot
/// over it: WAL read, frame decode, and re-applying every journaled accept
/// through the aggregator all happen inside the FederatedServer ctor.
double measure_recovery_ms(const std::filesystem::path& dir) {
  const std::string job = "bench-crash-recovery";
  const std::string persist_path = (dir / "recover.bin").string();
  const std::string journal_path = persist_path + ".journal";
  const std::map<std::string, flare::Credential> registry =
      flare::Provisioner(job, 17).provision_sites(kSites);

  std::vector<std::string> cohort;
  for (const auto& [site, cred] : registry) cohort.push_back(site);
  {
    flare::RoundJournal journal(journal_path, core::WalSyncPolicy::kEveryRound);
    (void)journal.open(job);
    journal.round_open(0, cohort);
    for (const std::string& site : cohort) {
      nn::StateDict update = bench_model();
      flare::Dxo dxo(flare::DxoKind::kWeights, std::move(update));
      dxo.set_meta_int(flare::Dxo::kMetaNumSamples, 10);
      journal.accepted(site, dxo);
    }
    journal.sync();
  }

  flare::ServerConfig config;
  config.job_id = job;
  config.num_rounds = 3;
  config.expected_clients = kSites;
  config.min_clients = kSites;

  const auto started = std::chrono::steady_clock::now();
  auto persistor = std::make_shared<flare::ModelPersistor>(persist_path);
  flare::FederatedServer server(
      config, registry, bench_model(),
      std::make_unique<flare::FedAvgAggregator>(false), persistor,
      persistor->load(),
      std::make_shared<flare::RoundJournal>(journal_path,
                                            core::WalSyncPolicy::kEveryRound));
  const auto elapsed = std::chrono::steady_clock::now() - started;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  bench::quiet_logs();

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("cppflare_bench_crash_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);

  std::printf("Durability overhead: %lld-site threaded federation, %lld rounds"
              " (%lld-float model)\n",
              static_cast<long long>(kSites), static_cast<long long>(kRounds),
              static_cast<long long>(kModelFloats));

  const std::array<double, 3> best = measure_interleaved(dir);
  const double off = best[static_cast<std::size_t>(Mode::kJournalOff)];
  const double per_round = best[static_cast<std::size_t>(Mode::kFsyncPerRound)];
  const double per_record =
      best[static_cast<std::size_t>(Mode::kFsyncPerRecord)];
  std::printf("  journal off      : %7.1f rounds/s\n", off);
  std::printf("  fsync per round  : %7.1f rounds/s  (%.3fx, budget 1.10x)\n",
              per_round, off / per_round);
  std::printf("  fsync per record : %7.1f rounds/s  (%.3fx)\n", per_record,
              off / per_record);

  const double recovery_ms = measure_recovery_ms(dir);
  std::printf("  mid-round recovery (journal replay of %lld accepts): %.2f ms\n",
              static_cast<long long>(kSites), recovery_ms);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"sites\": %lld,\n"
                 "  \"rounds\": %lld,\n"
                 "  \"model_floats\": %lld,\n"
                 "  \"transport\": \"threaded\",\n"
                 "  \"journal_off_rounds_per_sec\": %.3f,\n"
                 "  \"fsync_per_round_rounds_per_sec\": %.3f,\n"
                 "  \"fsync_per_record_rounds_per_sec\": %.3f,\n"
                 "  \"fsync_per_round_overhead_factor\": %.3f,\n"
                 "  \"fsync_per_round_overhead_budget\": 1.10,\n"
                 "  \"fsync_per_record_overhead_factor\": %.3f,\n"
                 "  \"recovery\": {\"journaled_accepts\": %lld, "
                 "\"replay_ms\": %.3f}\n"
                 "}\n",
                 static_cast<long long>(kSites),
                 static_cast<long long>(kRounds),
                 static_cast<long long>(kModelFloats), off, per_round,
                 per_record, off / per_round, off / per_record,
                 static_cast<long long>(kSites), recovery_ms);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }
  std::filesystem::remove_all(dir);
  return 0;
}
