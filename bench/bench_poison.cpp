// Adversarial-robustness bench (BENCH_robust.json).
//
// Runs an 8-site in-process federation under every poisoning mode from
// flare/poison.h, with 1 or 2 adversarial sites, across four aggregation
// configurations:
//
//   fedavg            — plain FedAvg, validator off (the undefended baseline)
//   fedavg_defended   — FedAvg + UpdateValidator + cross-round quarantine
//   median            — coordinate-wise median, validator off
//   trimmed_mean      — trimmed mean (k=2), validator off
//
// For each cell it reports rounds/s and an accuracy proxy: how far the
// final model converged toward the honest consensus, normalized so a clean
// run scores ~1.0 and a destroyed model (NaN, or further from consensus
// than the initial weights) scores 0. The clean column also yields the
// validator-overhead number the ISSUE caps at 5%.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "flare/robust_aggregator.h"
#include "flare/simulator.h"
#include "flare/validator.h"

namespace {

using namespace cppflare;

constexpr std::int64_t kSites = 8;
constexpr float kInitValue = 5.0f;

nn::StateDict tiny_model() {
  nn::StateDict d;
  d.insert("w", {{16}, std::vector<float>(16, kInitValue)});
  return d;
}

class NudgeLearner : public flare::Learner {
 public:
  NudgeLearner(std::string site, float target)
      : site_(std::move(site)), target_(target) {}

  flare::Dxo train(const flare::Dxo& global, const flare::FLContext&) override {
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v += 0.5f * (target_ - v);
    }
    flare::Dxo update(flare::DxoKind::kWeights, updated);
    update.set_meta_int(flare::Dxo::kMetaNumSamples, 10);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float target_;
};

struct AggSetup {
  const char* name;
  bool defended;  // validator + quarantine on
};

const AggSetup kAggSetups[] = {
    {"fedavg", false},
    {"fedavg_defended", true},
    {"median", false},
    {"trimmed_mean", false},
};

std::unique_ptr<flare::Aggregator> make_aggregator(const std::string& name) {
  if (name == "median") return std::make_unique<flare::MedianAggregator>();
  if (name == "trimmed_mean")
    return std::make_unique<flare::TrimmedMeanAggregator>(2);
  return std::make_unique<flare::FedAvgAggregator>(true);
}

struct AttackSetup {
  const char* name;
  flare::PoisonPlan plan;  // enabled() == false means clean
};

std::vector<AttackSetup> attack_setups() {
  std::vector<AttackSetup> attacks(5);
  attacks[0].name = "clean";
  attacks[1].name = "scale";
  attacks[1].plan.scale_factor = -10.0;
  attacks[2].name = "sign_flip";
  attacks[2].plan.sign_flip = true;
  attacks[3].name = "noise";
  attacks[3].plan.noise_sigma = 20.0;
  attacks[4].name = "nan";
  attacks[4].plan.nan_prob = 1.0;
  return attacks;
}

struct CellResult {
  double rounds_per_sec = 0.0;
  double accuracy = 0.0;
  std::int64_t quarantined = 0;
  bool aborted = false;
};

/// Accuracy proxy: normalized convergence toward the mean of the HONEST
/// sites' nudge targets. 1.0 = reached the consensus, 0 = no better than
/// the initial model (or non-finite).
double accuracy_of(const nn::StateDict& model, std::int64_t num_adversaries) {
  double honest_target = 0.0;
  const std::int64_t honest = kSites - num_adversaries;
  for (std::int64_t i = 0; i < honest; ++i) honest_target += static_cast<double>(i);
  honest_target /= static_cast<double>(honest);

  double sq = 0.0;
  std::size_t n = 0;
  for (const auto& [name, blob] : model.entries()) {
    for (const float v : blob.values) {
      if (!std::isfinite(v)) return 0.0;
      const double d = static_cast<double>(v) - honest_target;
      sq += d * d;
      n += 1;
    }
  }
  const double rmse = std::sqrt(sq / static_cast<double>(n));
  const double init_rmse = std::abs(static_cast<double>(kInitValue) - honest_target);
  if (init_rmse <= 0.0) return 1.0;
  const double acc = 1.0 - rmse / init_rmse;
  return acc < 0.0 ? 0.0 : acc;
}

CellResult run_cell(const AggSetup& agg, const AttackSetup& attack,
                    std::int64_t num_adversaries, std::int64_t rounds) {
  flare::SimulatorConfig config;
  config.num_clients = kSites;
  config.num_rounds = rounds;
  config.compute_threads = -1;
  if (agg.defended) {
    config.validator.norm_zscore_threshold = 6.0;
    config.validator.min_updates_for_outlier = 4;
    config.validator.max_sample_count = 50;
    config.reputation.quarantine_after = 2;
    config.reputation.parole_after = 2;
  } else {
    config.validator.enabled = false;
  }
  flare::SimulatorRunner runner(
      config, tiny_model(), make_aggregator(agg.name),
      [](std::int64_t i, const std::string& name) {
        return std::make_shared<NudgeLearner>(name, static_cast<float>(i));
      });
  if (attack.plan.enabled() && num_adversaries > 0) {
    const flare::PoisonPlan plan = attack.plan;
    runner.set_poison_planner(
        [plan, num_adversaries](
            std::int64_t index,
            const std::string&) -> std::optional<flare::PoisonPlan> {
          // The last `num_adversaries` sites attack.
          if (index < kSites - num_adversaries) return std::nullopt;
          flare::PoisonPlan site_plan = plan;
          site_plan.seed += static_cast<std::uint64_t>(index);
          return site_plan;
        });
  }
  const flare::SimulationResult result = runner.run();
  CellResult cell;
  cell.aborted = result.aborted;
  if (!result.aborted && result.wall_seconds > 0.0) {
    cell.rounds_per_sec = static_cast<double>(rounds) / result.wall_seconds;
  }
  cell.accuracy = result.aborted ? 0.0
                                 : accuracy_of(result.final_model,
                                               attack.plan.enabled()
                                                   ? num_adversaries
                                                   : 0);
  cell.quarantined =
      static_cast<std::int64_t>(result.quarantined_sites.size());
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  bench::quiet_logs();
  // Every poisoned submit logs a rejection warning by design; silence all
  // but errors at bench scale.
  core::LogConfig::instance().set_threshold(core::LogLevel::kError);

  const std::int64_t rounds = 20;
  const auto attacks = attack_setups();
  std::printf("Adversarial robustness: %lld-site in-proc federation, "
              "%lld rounds per cell\n",
              static_cast<long long>(kSites), static_cast<long long>(rounds));

  std::string cells_json;
  double clean_undefended_rps = 0.0;
  double clean_defended_rps = 0.0;
  for (const AggSetup& agg : kAggSetups) {
    std::printf("  %s\n", agg.name);
    for (const AttackSetup& attack : attacks) {
      const bool clean = !attack.plan.enabled();
      for (std::int64_t adv = clean ? 0 : 1; adv <= (clean ? 0 : 2); ++adv) {
        const CellResult cell = run_cell(agg, attack, adv, rounds);
        std::printf("    %-10s adv=%lld : acc %.3f, %7.1f rounds/s, "
                    "quarantined %lld%s\n",
                    attack.name, static_cast<long long>(adv), cell.accuracy,
                    cell.rounds_per_sec, static_cast<long long>(cell.quarantined),
                    cell.aborted ? "  [ABORTED]" : "");
        if (clean && std::strcmp(agg.name, "fedavg") == 0) {
          clean_undefended_rps = cell.rounds_per_sec;
        }
        if (clean && std::strcmp(agg.name, "fedavg_defended") == 0) {
          clean_defended_rps = cell.rounds_per_sec;
        }
        char buf[512];
        std::snprintf(buf, sizeof(buf),
                      "    {\"aggregation\": \"%s\", \"attack\": \"%s\", "
                      "\"adversaries\": %lld, \"accuracy\": %.4f, "
                      "\"rounds_per_sec\": %.3f, \"quarantined_sites\": %lld, "
                      "\"aborted\": %s}",
                      agg.name, attack.name, static_cast<long long>(adv),
                      cell.accuracy, cell.rounds_per_sec,
                      static_cast<long long>(cell.quarantined),
                      cell.aborted ? "true" : "false");
        if (!cells_json.empty()) cells_json += ",\n";
        cells_json += buf;
      }
    }
  }

  // Validator overhead on a clean run. End-to-end rounds/s is quantized by
  // the clients' 5 ms poll loop, so an A/B of full federations measures
  // poll alignment, not the validator (see the rounds/s spread above).
  // Instead, measure the validator's added cost per round directly — admit
  // vs bare aggregator accept over the same updates, plus the round-close
  // outlier pass — and express it against the measured clean round time.
  (void)clean_defended_rps;
  const double clean_round_seconds =
      clean_undefended_rps > 0.0 ? 1.0 / clean_undefended_rps : 0.0;
  const nn::StateDict global = tiny_model();
  flare::Dxo update(flare::DxoKind::kWeights, global);
  update.set_meta_int(flare::Dxo::kMetaNumSamples, 10);
  constexpr int kMicroRounds = 2000;
  flare::ValidatorConfig vcfg;
  vcfg.norm_zscore_threshold = 6.0;
  vcfg.min_updates_for_outlier = 4;
  const auto time_rounds = [&](bool validated) {
    flare::UpdateValidator validator(vcfg);
    flare::FedAvgAggregator agg(true);
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < kMicroRounds; ++r) {
      agg.reset(global, r);
      validator.reset(global, r);
      for (std::int64_t s = 0; s < kSites; ++s) {
        const std::string site = "site-" + std::to_string(s + 1);
        if (validated) {
          validator.admit(agg, site, update);
        } else {
          agg.accept(site, update);
        }
      }
      if (validated) (void)validator.flag_outliers();
      (void)agg.aggregate();
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count() /
           kMicroRounds;
  };
  const double bare_round = time_rounds(false);
  const double validated_round = time_rounds(true);
  const double validator_seconds_per_round =
      validated_round > bare_round ? validated_round - bare_round : 0.0;
  const double overhead_pct =
      clean_round_seconds > 0.0
          ? validator_seconds_per_round / clean_round_seconds * 100.0
          : 0.0;
  std::printf("  validator cost: %.1f us/round on top of a %.2f ms clean "
              "round -> %.2f%% overhead (target <= 5%%)\n",
              validator_seconds_per_round * 1e6, clean_round_seconds * 1e3,
              overhead_pct);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"sites\": %lld,\n"
                 "  \"rounds\": %lld,\n"
                 "  \"transport\": \"in_proc\",\n"
                 "  \"validator_overhead_pct\": %.2f,\n"
                 "  \"cells\": [\n%s\n  ]\n"
                 "}\n",
                 static_cast<long long>(kSites), static_cast<long long>(rounds),
                 overhead_pct, cells_json.c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}
