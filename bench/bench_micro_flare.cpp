// Microbenchmarks for the federated framework: serialization, channel
// crypto, aggregation, and transport round trips (google-benchmark).
#include <benchmark/benchmark.h>

#include "core/logging.h"
#include "core/sha256.h"
#include "flare/aggregator.h"
#include "flare/provision.h"
#include "flare/secure_channel.h"
#include "flare/tcp.h"

namespace {

using namespace cppflare;

nn::StateDict model_of_size(std::int64_t n) {
  nn::StateDict d;
  nn::ParamBlob blob;
  blob.shape = {n};
  blob.values.resize(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    blob.values[static_cast<std::size_t>(i)] = static_cast<float>(i % 97) * 0.01f;
  }
  d.insert("w", std::move(blob));
  return d;
}

void BM_StateDictSerialize(benchmark::State& state) {
  const nn::StateDict d = model_of_size(state.range(0));
  for (auto _ : state) {
    core::ByteWriter w;
    d.serialize(w);
    benchmark::DoNotOptimize(w.bytes().data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_StateDictSerialize)->Arg(100000)->Arg(1300000);

void BM_StateDictDeserialize(benchmark::State& state) {
  const nn::StateDict d = model_of_size(state.range(0));
  core::ByteWriter w;
  d.serialize(w);
  for (auto _ : state) {
    core::ByteReader r(w.bytes());
    nn::StateDict back = nn::StateDict::deserialize(r);
    benchmark::DoNotOptimize(back.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_StateDictDeserialize)->Arg(100000)->Arg(1300000);

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xa5);
  for (auto _ : state) {
    const core::Digest digest = core::Sha256::hash(data.data(), data.size());
    benchmark::DoNotOptimize(digest[0]);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(1024)->Arg(1 << 20);

void BM_SealOpen(benchmark::State& state) {
  const std::vector<std::uint8_t> key(32, 0x7);
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)), 0x3c);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    const auto sealed = flare::seal("site-1", key, ++seq, payload);
    const flare::Envelope env = flare::open(sealed, key);
    benchmark::DoNotOptimize(env.payload.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SealOpen)->Arg(1024)->Arg(5 << 20);

void BM_FedAvgRound(benchmark::State& state) {
  core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
  const std::int64_t params = state.range(0);
  const nn::StateDict global = model_of_size(params);
  std::vector<flare::Dxo> contributions;
  for (int i = 0; i < 8; ++i) {
    flare::Dxo dxo(flare::DxoKind::kWeights, model_of_size(params));
    dxo.set_meta_int(flare::Dxo::kMetaNumSamples, 100 + i);
    contributions.push_back(std::move(dxo));
  }
  flare::FedAvgAggregator agg(true);
  for (auto _ : state) {
    agg.reset(global, 0);
    for (int i = 0; i < 8; ++i) {
      agg.accept("site-" + std::to_string(i + 1), contributions[i]);
    }
    nn::StateDict out = agg.aggregate();
    benchmark::DoNotOptimize(out.at("w").values.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * params);
}
BENCHMARK(BM_FedAvgRound)->Arg(100000)->Arg(1300000);

void BM_Provisioning(benchmark::State& state) {
  for (auto _ : state) {
    const flare::Provisioner p("bench_project", 42);
    const auto registry = p.provision_sites(8);
    benchmark::DoNotOptimize(registry.size());
  }
}
BENCHMARK(BM_Provisioning);

void BM_TcpRoundTrip(benchmark::State& state) {
  flare::TcpServer server(0, [](const std::vector<std::uint8_t>& r) { return r; });
  flare::TcpConnection conn("127.0.0.1", server.port());
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)), 0x42);
  for (auto _ : state) {
    const auto response = conn.call(payload);
    benchmark::DoNotOptimize(response.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_TcpRoundTrip)->Arg(1024)->Arg(1 << 20);

}  // namespace
