// Observability overhead bench (DESIGN.md §11).
//
// Runs the same 8-site loopback-TCP federation twice — tracer disabled
// (every CF_TRACE_SPAN is one relaxed load + branch) and fully traced
// (spans recorded into the ring, per-site gauges live) — and reports
// rounds/s for each plus the overhead factor. The budget this bench
// enforces by measurement: fully traced ≤5% slower than clean; the no-op
// cost of compiled-in-but-disabled spans is part of the "clean" number by
// construction (a CPPFLARE_DISABLE_TRACING build removes even that, spec'd
// at ≤1%). Best-of-N is reported so scheduler noise on small machines
// doesn't masquerade as tracing cost.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "core/trace.h"
#include "flare/observability.h"
#include "flare/simulator.h"

namespace {

using namespace cppflare;

nn::StateDict tiny_model() {
  nn::StateDict d;
  d.insert("w", {{16}, std::vector<float>(16, 0.0f)});
  return d;
}

class NudgeLearner : public flare::Learner {
 public:
  NudgeLearner(std::string site, float target)
      : site_(std::move(site)), target_(target) {}

  flare::Dxo train(const flare::Dxo& global, const flare::FLContext&) override {
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v += 0.5f * (target_ - v);
    }
    flare::Dxo update(flare::DxoKind::kWeights, updated);
    update.set_meta_int(flare::Dxo::kMetaNumSamples, 10);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float target_;
};

double run_federation(std::int64_t rounds, bool traced) {
  flare::SimulatorConfig config;
  config.num_clients = 8;
  config.num_rounds = rounds;
  config.use_tcp = true;
  config.compute_threads = -1;
  // Long-poll dispatch (the server pushes tasks into parked get_task calls)
  // keeps round turnover free of polling jitter, so no poll tuning is needed
  // for the tracing cost this bench is trying to resolve.
  config.trace = traced;
  flare::SimulatorRunner runner(
      config, tiny_model(), std::make_unique<flare::FedAvgAggregator>(true),
      [](std::int64_t i, const std::string& name) {
        return std::make_shared<NudgeLearner>(name, static_cast<float>(i));
      });
  const flare::SimulationResult result = runner.run();
  if (result.aborted ||
      result.history.size() != static_cast<std::size_t>(rounds)) {
    std::fprintf(stderr, "federation did not complete cleanly\n");
    std::exit(1);
  }
  return static_cast<double>(rounds) / result.wall_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  bench::quiet_logs();

  const std::int64_t rounds = 100;
  const int reps = 3;
  std::printf("Observability overhead: 8-site TCP federation, %lld rounds, "
              "best of %d\n",
              static_cast<long long>(rounds), reps);

  // Alternate clean/traced reps so drift (thermal, page cache) hits both.
  double clean_rps = 0.0;
  double traced_rps = 0.0;
  for (int r = 0; r < reps; ++r) {
    clean_rps = std::max(clean_rps, run_federation(rounds, /*traced=*/false));
    traced_rps = std::max(traced_rps, run_federation(rounds, /*traced=*/true));
  }
  const double overhead = clean_rps / traced_rps;

  // The last traced run's timeline is still buffered: report its size and
  // the hottest spans so the bench doubles as a smoke test of the exporter.
  const std::size_t events = core::Tracer::instance().size();
  const std::int64_t dropped = core::Tracer::instance().dropped();

  std::printf("  clean  (tracer off): %7.1f rounds/s\n", clean_rps);
  std::printf("  traced (tracer on) : %7.1f rounds/s  [%zu spans, %lld "
              "dropped]\n",
              traced_rps, events, static_cast<long long>(dropped));
  std::printf("  overhead factor: %.3fx (budget 1.05x)%s\n", overhead,
              overhead <= 1.05 ? "" : "  ** OVER BUDGET **");
  std::printf("\n%s", flare::write_trace_summary().c_str());

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"sites\": 8,\n"
                 "  \"rounds\": %lld,\n"
                 "  \"reps\": %d,\n"
                 "  \"transport\": \"tcp\",\n"
                 "  \"tracing_compiled_in\": %s,\n"
                 "  \"clean_rounds_per_sec\": %.3f,\n"
                 "  \"traced_rounds_per_sec\": %.3f,\n"
                 "  \"overhead_factor\": %.4f,\n"
                 "  \"overhead_budget\": 1.05,\n"
                 "  \"trace_events\": %zu,\n"
                 "  \"trace_dropped\": %lld\n"
                 "}\n",
                 static_cast<long long>(rounds), reps,
                 core::kTracingCompiledIn ? "true" : "false", clean_rps,
                 traced_rps, overhead, events,
                 static_cast<long long>(dropped));
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }
  return 0;
}
