// Microbenchmarks for the tensor/NN substrate (google-benchmark).
//
// The GEMM and model benches take the compute-thread budget as their last
// range argument, so one run sweeps 1..N threads and `scripts/bench.sh` can
// record the scaling curve in a single JSON file.
#include <benchmark/benchmark.h>

#include "core/parallel.h"
#include "models/lstm_classifier.h"
#include "nn/lstm.h"
#include "nn/transformer.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace {

using namespace cppflare;
using tensor::Tensor;

void set_threads_from_arg(benchmark::State& state) {
  core::set_compute_threads(static_cast<std::size_t>(state.range(1)));
}

void BM_GemmNN(benchmark::State& state) {
  set_threads_from_arg(state);
  const std::int64_t n = state.range(0);
  std::vector<float> a(512 * 128), b(128 * n), c(512 * n);
  for (auto& x : a) x = 0.5f;
  for (auto& x : b) x = 0.25f;
  for (auto _ : state) {
    tensor::gemm_nn(a.data(), b.data(), c.data(), 512, 128, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 512 * 128 * n);
}
BENCHMARK(BM_GemmNN)
    ->Args({128, 1})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4});

void BM_GemmNT(benchmark::State& state) {
  set_threads_from_arg(state);
  const std::int64_t n = state.range(0);
  std::vector<float> a(512 * 128), b(n * 128), c(512 * n);
  for (auto& x : a) x = 0.5f;
  for (auto& x : b) x = 0.25f;
  for (auto _ : state) {
    tensor::gemm_nt(a.data(), b.data(), c.data(), 512, 128, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 512 * 128 * n);
}
BENCHMARK(BM_GemmNT)
    ->Args({128, 1})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4});

void BM_GemmTN(benchmark::State& state) {
  set_threads_from_arg(state);
  const std::int64_t n = state.range(0);
  std::vector<float> a(512 * 128), b(512 * n), c(128 * n);
  for (auto& x : a) x = 0.5f;
  for (auto& x : b) x = 0.25f;
  for (auto _ : state) {
    tensor::gemm_tn(a.data(), b.data(), c.data(), 512, 128, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 512 * 128 * n);
}
BENCHMARK(BM_GemmTN)
    ->Args({128, 1})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4});

void BM_SoftmaxLastdim(benchmark::State& state) {
  core::Rng rng(1);
  Tensor x = Tensor::randn({96, 32, 32}, rng);
  tensor::NoGradGuard guard;
  for (auto _ : state) {
    Tensor y = tensor::softmax_lastdim(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SoftmaxLastdim);

void BM_LayerNorm(benchmark::State& state) {
  core::Rng rng(2);
  Tensor x = Tensor::randn({512, 128}, rng);
  Tensor gamma = Tensor::full({128}, 1.0f);
  Tensor beta = Tensor::zeros({128});
  tensor::NoGradGuard guard;
  for (auto _ : state) {
    Tensor y = tensor::layer_norm(x, gamma, beta);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerNorm);

void BM_AttentionForward(benchmark::State& state) {
  core::set_compute_threads(static_cast<std::size_t>(state.range(0)));
  core::Rng rng(3);
  nn::MultiHeadSelfAttention attn(128, 6, 22, 0.0f, rng);
  attn.set_training(false);
  Tensor x = Tensor::randn({8, 32, 128}, rng);
  core::Rng fw(4);
  tensor::NoGradGuard guard;
  for (auto _ : state) {
    Tensor y = attn.forward(x, Tensor{}, fw);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_AttentionForward)->Arg(1)->Arg(4);

void BM_LstmForward(benchmark::State& state) {
  core::set_compute_threads(static_cast<std::size_t>(state.range(0)));
  core::Rng rng(5);
  nn::Lstm lstm(128, 128, 3, 0.0f, rng);
  lstm.set_training(false);
  Tensor x = Tensor::randn({8, 32, 128}, rng);
  core::Rng fw(6);
  tensor::NoGradGuard guard;
  for (auto _ : state) {
    Tensor y = lstm.forward(x, fw);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LstmForward)->Arg(1)->Arg(4);

void BM_EmbeddingLookup(benchmark::State& state) {
  core::Rng rng(7);
  Tensor w = Tensor::randn({1000, 128}, rng);
  std::vector<std::int64_t> ids(512);
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = (i * 37) % 1000;
  tensor::NoGradGuard guard;
  for (auto _ : state) {
    Tensor y = tensor::embedding(w, ids);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_EmbeddingLookup);

void BM_CrossEntropy(benchmark::State& state) {
  core::Rng rng(8);
  Tensor logits = Tensor::randn({512, 1000}, rng);
  std::vector<std::int64_t> targets(512);
  for (std::size_t i = 0; i < targets.size(); ++i) targets[i] = (i * 13) % 1000;
  tensor::NoGradGuard guard;
  for (auto _ : state) {
    Tensor loss = tensor::cross_entropy(logits, targets);
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_CrossEntropy);

void BM_BertMiniTrainStep(benchmark::State& state) {
  core::set_compute_threads(static_cast<std::size_t>(state.range(0)));
  core::Rng rng(9);
  models::ModelConfig config = models::ModelConfig::bert_mini(400, 32);
  auto model = models::make_classifier(config, rng);
  data::Batch batch;
  batch.batch_size = 8;
  batch.seq_len = 32;
  core::Rng ids_rng(10);
  for (int i = 0; i < 8; ++i) {
    for (int t = 0; t < 32; ++t) batch.ids.push_back(ids_rng.uniform_int(5, 399));
    batch.lengths.push_back(32);
    batch.labels.push_back(i % 2);
  }
  core::Rng fw(11);
  for (auto _ : state) {
    tensor::Tensor loss =
        tensor::cross_entropy(model->class_logits(batch, fw), batch.labels);
    model->zero_grad();
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
}
BENCHMARK(BM_BertMiniTrainStep)->Arg(1)->Arg(4);

}  // namespace
