// Shared helpers for the table/figure bench binaries.
#pragma once

#include <cstdio>
#include <string>

#include "core/logging.h"
#include "train/experiment.h"

namespace cppflare::bench {

/// Banner + scale dump shared by the experiment benches.
inline void print_header(const std::string& title,
                         const train::ExperimentScale& scale) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
  std::printf(
      "reproduction scale (override via REPRO_* env vars):\n"
      "  patients=%lld (paper: 8638)  pretrain_seqs=%lld (paper: 453377)\n"
      "  clients=%lld  fl_rounds=%lld  local_epochs=%lld  batch=%lld (rnn) / "
      "%lld (transformer)  lr=%g\n"
      "  max_seq_len=%lld  vocab~=%lld\n\n",
      static_cast<long long>(scale.num_patients),
      static_cast<long long>(scale.pretrain_sequences),
      static_cast<long long>(scale.num_clients),
      static_cast<long long>(scale.fl_rounds),
      static_cast<long long>(scale.local_epochs),
      static_cast<long long>(scale.batch_size),
      static_cast<long long>(scale.transformer_batch_size), scale.lr,
      static_cast<long long>(scale.max_seq_len),
      static_cast<long long>(scale.num_drugs + scale.num_diagnoses +
                             scale.num_procedures + 2));
}

/// Silence the NVFlare-style component logs during measurement loops.
inline void quiet_logs() {
  core::LogConfig::instance().set_threshold(core::LogLevel::kWarn);
}

}  // namespace cppflare::bench
